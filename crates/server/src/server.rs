//! The TCP daemon.
//!
//! One thread per connection does the line-oriented I/O; `query` requests
//! are handed to the shared [`WorkerPool`] so a slow synopsis build on one
//! connection cannot starve another, and so total concurrent query work is
//! bounded regardless of how many clients connect. `ping` and `stats` are
//! answered inline — they must stay responsive precisely when the pool is
//! saturated.
//!
//! Determinism: each request carries a seed, and exactly one worker runs
//! the whole request with `Mt64::new(seed)` — the same generator the
//! offline driver uses — so answers are byte-identical to a local
//! `apx_cqa` run with that seed, whatever the pool size.

use crate::cache::{CacheKey, SynopsisCache};
use crate::metrics::Metrics;
use crate::pool::{PoolConfig, SubmitError, WorkerPool};
use crate::protocol::{
    DebugTarget, ErrorKind, QueryRequest, Request, Response, StatsFormat, WireAnswer, WireDigest,
    WireSlowlogEntry, PROTOCOL_VERSION,
};
use cqa_common::{fnv1a64, CqaError, Deadline, Mt64, Stopwatch};
use cqa_core::{apx_cqa_on_synopses, Budget};
use cqa_obs::flight::{self, FlightDigest, SlowlogEntry};
use cqa_storage::{dump_to_string, schema_to_ddl, Database};
use cqa_synopsis::{build_synopses, BuildOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7171` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads for query execution (0 = one per CPU).
    pub workers: usize,
    /// Admission-queue depth before `overloaded` rejections start.
    pub queue_depth: usize,
    /// Maximum cached synopsis sets.
    pub cache_capacity: usize,
    /// Deadline for requests that do not set `timeout_ms` (None = no
    /// default deadline).
    pub default_timeout_ms: Option<u64>,
    /// Sample budget per request.
    pub max_samples: u64,
    /// Queries slower than this (admission to reply) are tail-sampled
    /// into the flight recorder's slow/error log with their full span
    /// tree.
    pub slow_threshold_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7171".to_owned(),
            workers: 0,
            queue_depth: 64,
            cache_capacity: 128,
            default_timeout_ms: Some(30_000),
            max_samples: u64::MAX,
            slow_threshold_ms: 1_000,
        }
    }
}

/// Everything the connection and worker threads share.
struct Shared {
    db: Database,
    /// Fingerprints are computed once at startup; `CacheKey::new` would
    /// re-serialize the whole database per request.
    db_fingerprint: u64,
    constraint_fingerprint: u64,
    cache: SynopsisCache,
    metrics: Metrics,
    pool: WorkerPool,
    default_timeout_ms: Option<u64>,
    max_samples: u64,
    slow_threshold_micros: u64,
    /// Source of `srv-…` request ids for clients that supply none: a
    /// monotonic counter, so ids are unique per server without ambient
    /// entropy (the workspace's `rng-flow` lint bans that).
    next_request_id: AtomicU64,
    shutdown: AtomicBool,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and spawns the worker pool. The database is
    /// fingerprinted here, once.
    pub fn bind(db: Database, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            config.workers
        };
        let db_fingerprint = fnv1a64(dump_to_string(&db).as_bytes());
        let constraint_fingerprint = fnv1a64(schema_to_ddl(db.schema()).as_bytes());
        let pool = WorkerPool::new(PoolConfig { workers, queue_depth: config.queue_depth })?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                db,
                db_fingerprint,
                constraint_fingerprint,
                cache: SynopsisCache::with_capacity(config.cache_capacity.max(1)),
                metrics: Metrics::new(),
                pool,
                default_timeout_ms: config.default_timeout_ms,
                max_samples: config.max_samples,
                slow_threshold_micros: config.slow_threshold_ms.saturating_mul(1_000),
                next_request_id: AtomicU64::new(1),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the calling thread until shut down.
    pub fn run(self) {
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            self.shared.metrics.connections.inc();
            let shared = Arc::clone(&self.shared);
            // Clone the stream first so a failed spawn can still answer.
            let reject_stream = stream.try_clone();
            let spawned = std::thread::Builder::new()
                .name("cqa-conn".to_owned())
                .spawn(move || serve_connection(&shared, stream));
            if spawned.is_err() {
                // Thread exhaustion is load shedding, not a crash: answer
                // with a structured `overloaded` error and hang up.
                self.shared.metrics.rejected_overloaded.inc();
                if let Ok(mut s) = reject_stream {
                    let _ = s.write_all(connection_reject_line().as_bytes());
                }
            }
        }
    }

    /// Runs the accept loop on a background thread; the returned handle
    /// shuts the server down when asked (or when dropped).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread =
            std::thread::Builder::new().name("cqa-accept".to_owned()).spawn(move || self.run())?;
        Ok(ServerHandle { addr, shared, thread: Some(thread) })
    }
}

/// Controls a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread. Open
    /// connections are not torn down; they end when their clients hang up.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.shared.shutdown.store(true, Ordering::SeqCst);
            // The accept loop only observes the flag on its next
            // iteration; poke it with a throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The one-line answer sent when the accept loop cannot spawn a
/// connection thread (same NDJSON shape every other error uses).
fn connection_reject_line() -> String {
    let response = Response::Error {
        kind: ErrorKind::Overloaded,
        message: "connection thread limit reached".to_owned(),
    };
    let mut line = response.to_line();
    line.push('\n');
    line
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // The protocol is request/response; Nagle only adds latency.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client hung up mid-line
        };
        // Chaos: an injected read failure drops the connection before the
        // request is processed, exactly like a client hang-up mid-line.
        if cqa_chaos::fault_point!("protocol/read").is_some() {
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(shared, &line);
        let mut payload = response.to_line();
        payload.push('\n');
        // Chaos: a failed write hangs up without answering; a short write
        // sends a truncated line first, so the client must also survive
        // torn NDJSON, not just clean disconnects.
        match cqa_chaos::fault_point!("protocol/write") {
            Some(cqa_chaos::Fault::ShortWrite) => {
                let torn = payload.as_bytes().get(..payload.len() / 2).unwrap_or_default();
                let _ = writer.write_all(torn);
                break;
            }
            Some(_) => break,
            None => {}
        }
        if writer.write_all(payload.as_bytes()).is_err() {
            break;
        }
        // Chaos: a failed flush is a hang-up after the kernel may or may
        // not have pushed the bytes — the ambiguous case clients fear.
        if cqa_chaos::fault_point!("protocol/flush").is_some() {
            break;
        }
        let _ = writer.flush();
    }
}

fn handle_line(shared: &Arc<Shared>, line: &str) -> Response {
    shared.metrics.requests.inc();
    let request = match Request::from_line(line) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.rejected_bad_request.inc();
            return Response::Error { kind: ErrorKind::BadRequest, message: e.to_string() };
        }
    };
    match request {
        Request::Ping => Response::Pong { version: PROTOCOL_VERSION },
        Request::Stats { format: StatsFormat::Json } => {
            Response::Stats(shared.metrics.stats_json(&shared.cache.stats()))
        }
        Request::Stats { format: StatsFormat::Prometheus } => {
            Response::StatsText(shared.metrics.to_prometheus(&shared.cache.stats()))
        }
        Request::Trace => {
            let (events, _dropped) = cqa_obs::trace::snapshot();
            Response::Trace(cqa_obs::export::chrome_trace(&events))
        }
        Request::Debug { target: DebugTarget::Flight } => {
            let _g = cqa_obs::span("server/debug_flight");
            let (digests, dropped) = flight::snapshot();
            Response::Flight {
                digests: digests.iter().map(WireDigest::from_digest).collect(),
                dropped,
            }
        }
        Request::Debug { target: DebugTarget::Slowlog } => {
            let _g = cqa_obs::span("server/debug_slowlog");
            Response::Slowlog(
                flight::slowlog_snapshot().iter().map(WireSlowlogEntry::from_entry).collect(),
            )
        }
        Request::Query(q) => dispatch_query(shared, q),
    }
}

/// Admits a query to the pool and waits for its worker's answer.
fn dispatch_query(shared: &Arc<Shared>, q: QueryRequest) -> Response {
    let admitted = Stopwatch::start();
    let admitted_micros = cqa_obs::now_micros();
    // Every request gets an id: the client's, or a generated `srv-…` one.
    let request_id = match &q.request_id {
        Some(id) => id.clone(),
        None => {
            format!("srv-{:016x}", shared.next_request_id.fetch_add(1, Ordering::Relaxed))
        }
    };
    let scheme_name = q.scheme.name();
    // Retries announce themselves so absorbed transient faults are
    // visible in `stats` even though every attempt looks like a fresh
    // request otherwise.
    if q.attempt > 0 {
        shared.metrics.retried_requests.inc();
    }
    // The deadline starts at admission: time spent queued counts.
    let deadline = match q.timeout_ms.or(shared.default_timeout_ms) {
        Some(ms) => Deadline::after(Duration::from_millis(ms)),
        None => Deadline::none(),
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel::<Response>(1);
    let submitted = shared.pool.try_submit({
        let shared = Arc::clone(shared);
        let request_id = request_id.clone();
        move || {
            // Queue wait straddles threads: record it from the explicit
            // admission timestamp rather than a span stack.
            let wait = cqa_obs::now_micros().saturating_sub(admitted_micros);
            shared.metrics.queue_wait.record_micros(wait);
            cqa_obs::record_span("server/queue_wait", admitted_micros, q.seed, 0);
            // Open the request scope: installs the id, starts the span
            // capture for the slow/error log, zeroes the convergence
            // slots. Exactly this worker thread runs the whole request.
            flight::begin_request(&request_id);
            cqa_core::convergence::reset();
            let mut query_fp = 0u64;
            let response = run_query(&shared, &q, deadline, &mut query_fp);
            flight::end_request();
            let conv = cqa_core::convergence::snapshot();
            if matches!(response, Response::Answers { .. }) {
                shared.metrics.queries_ok.inc();
                shared.metrics.query_latency.record(admitted.elapsed());
            }
            let total = cqa_obs::now_micros().saturating_sub(admitted_micros);
            record_flight(
                &shared,
                &request_id,
                query_fp,
                scheme_name,
                &response,
                wait,
                conv,
                total,
            );
            let _ = reply_tx.send(response);
        }
    });
    match submitted {
        Ok(()) => {}
        Err(SubmitError::Full { depth }) => {
            shared.metrics.rejected_overloaded.inc();
            let response = Response::Error {
                kind: ErrorKind::Overloaded,
                message: format!("admission queue full (depth {depth})"),
            };
            record_rejection(shared, &request_id, scheme_name, &response, admitted_micros);
            return response;
        }
        Err(SubmitError::Shutdown) => {
            shared.metrics.errors_internal.inc();
            let response = Response::Error {
                kind: ErrorKind::Internal,
                message: "worker pool is shut down".to_owned(),
            };
            record_rejection(shared, &request_id, scheme_name, &response, admitted_micros);
            return response;
        }
    }
    match reply_rx.recv() {
        Ok(response) => {
            match &response {
                Response::Error { kind: ErrorKind::DeadlineExceeded, .. } => {
                    shared.metrics.rejected_deadline.inc();
                }
                Response::Error { kind: ErrorKind::BadRequest, .. } => {
                    shared.metrics.rejected_bad_request.inc();
                }
                Response::Error { kind: ErrorKind::Internal, .. } => {
                    shared.metrics.errors_internal.inc();
                }
                _ => {}
            }
            response
        }
        Err(_) => {
            // The worker discarded the job or panicked mid-request (the
            // pool contains the panic); the client still gets a
            // structured, retryable answer, and the flight recorder still
            // gets a digest — no worker ran, so it is rejection-shaped.
            shared.metrics.errors_internal.inc();
            let response = Response::Error {
                kind: ErrorKind::Internal,
                message: "worker dropped the request".to_owned(),
            };
            record_rejection(shared, &request_id, scheme_name, &response, admitted_micros);
            response
        }
    }
}

/// Assembles one request's flight digest from the worker's outcome and
/// records it; requests that erred or overran the slow threshold are also
/// tail-sampled into the slow/error log with the span tree still sitting
/// in this thread's capture buffer (extracting it allocates, so only the
/// slow path pays).
#[allow(clippy::too_many_arguments)] // a digest is wide by design
fn record_flight(
    shared: &Shared,
    request_id: &str,
    query_fingerprint: u64,
    scheme: &'static str,
    response: &Response,
    queue_wait_micros: u64,
    conv: cqa_core::Convergence,
    total_micros: u64,
) {
    let (cache_hit, error, preprocess_micros, scheme_micros) = match response {
        Response::Answers { cached, preprocess_ms, scheme_ms, .. } => {
            (*cached, None, (preprocess_ms * 1000.0) as u64, (scheme_ms * 1000.0) as u64)
        }
        Response::Error { kind, .. } => (false, Some(kind.name()), 0, 0),
        _ => (false, None, 0, 0),
    };
    let ts_micros = cqa_obs::now_micros();
    flight::record(&FlightDigest {
        request_id: request_id.to_owned(),
        query_fingerprint,
        scheme,
        cache_hit,
        error,
        queue_wait_micros,
        samples: conv.samples,
        variance: conv.variance,
        ci_half_width: conv.ci_half_width,
        preprocess_micros,
        scheme_micros,
        total_micros,
        ts_micros,
    });
    shared.metrics.last_request_samples.set(conv.samples.min(i64::MAX as u64) as i64);
    shared.metrics.last_request_ci_ppm.set((conv.ci_half_width * 1e6) as i64);
    if error.is_some() || total_micros > shared.slow_threshold_micros {
        shared.metrics.slow_requests.inc();
        flight::slowlog_record(SlowlogEntry {
            request_id: request_id.to_owned(),
            error,
            total_micros,
            ts_micros,
            spans: flight::take_request_spans(),
        });
    }
}

/// Digests a request the pool never accepted (queue full, shutdown): no
/// worker ran, so there is no span capture and no convergence data.
fn record_rejection(
    shared: &Shared,
    request_id: &str,
    scheme: &'static str,
    response: &Response,
    admitted_micros: u64,
) {
    let total = cqa_obs::now_micros().saturating_sub(admitted_micros);
    let conv = cqa_core::Convergence { samples: 0, variance: 0.0, ci_half_width: 0.0 };
    record_flight(shared, request_id, 0, scheme, response, 0, conv, total);
}

/// Executes one admitted query on a worker thread. `query_fp` reports the
/// canonical query fingerprint to the flight recorder once the query
/// parses (0 otherwise).
fn run_query(
    shared: &Shared,
    q: &QueryRequest,
    deadline: Deadline,
    query_fp: &mut u64,
) -> Response {
    let mut req_span = cqa_obs::span_args("server/request", q.seed, 0);
    // Chaos: an injected deadline fault is a premature expiry — the
    // admission-time check fires as if queue wait had eaten the budget.
    if deadline.expired() || cqa_chaos::fault_point!("server/deadline").is_some() {
        return Response::Error {
            kind: ErrorKind::DeadlineExceeded,
            message: "deadline expired while queued".to_owned(),
        };
    }
    let cq = match cqa_query::parse(shared.db.schema(), &q.query) {
        Ok(cq) => cq,
        Err(e) => return Response::Error { kind: ErrorKind::BadRequest, message: e.to_string() },
    };
    *query_fp = cq.canonical_fingerprint();
    let key = CacheKey {
        db_fingerprint: shared.db_fingerprint,
        constraint_fingerprint: shared.constraint_fingerprint,
        query_fingerprint: *query_fp,
    };
    let literal_fp = CacheKey::literal_fingerprint(&q.query);
    let lookup_span = cqa_obs::span("server/cache_lookup");
    let looked_up = shared.cache.get(&key, literal_fp);
    drop(lookup_span);
    let (syn, cached) = match looked_up {
        Some(syn) => (syn, true),
        None => {
            let options = BuildOptions { deadline: Some(deadline), max_homs: None };
            let build_span = cqa_obs::span("server/synopsis_build");
            // Chaos: a failed synopsis build (the allocation-heavy phase)
            // surfaces as `internal`, which is retryable — the next
            // attempt rebuilds from scratch.
            let built = if cqa_chaos::fault_point!("synopsis/build").is_some() {
                Err(CqaError::InvalidSynopsis("injected fault at synopsis/build".to_owned()))
            } else {
                build_synopses(&shared.db, &cq, options)
            };
            drop(build_span);
            match built {
                Ok(syn) => {
                    let syn = Arc::new(syn);
                    shared.cache.insert(key, literal_fp, Arc::clone(&syn));
                    (syn, false)
                }
                Err(e) => return error_response(e),
            }
        }
    };
    let budget = Budget { deadline, max_samples: shared.max_samples };
    // Same generator construction as the offline driver: answers for a
    // fixed seed match `apx_cqa` exactly, independent of pool size.
    let mut rng = Mt64::new(q.seed);
    let mut sample_span = cqa_obs::span("server/sampling");
    let outcome = apx_cqa_on_synopses(&syn, q.scheme, q.eps, q.delta, &budget, &mut rng);
    if let Ok(result) = &outcome {
        sample_span.set_args(result.total_samples, syn.entries.len() as u64);
        req_span.set_args(q.seed, result.total_samples);
    }
    drop(sample_span);
    match outcome {
        Ok(result) => Response::Answers {
            cached,
            preprocess_ms: if cached { 0.0 } else { result.preprocess_time.as_secs_f64() * 1000.0 },
            scheme_ms: result.scheme_time.as_secs_f64() * 1000.0,
            total_samples: result.total_samples,
            answers: result
                .answers
                .iter()
                .map(|te| WireAnswer {
                    tuple: te.tuple.iter().map(|&d| shared.db.resolve(d)).collect(),
                    frequency: te.frequency,
                    samples: te.samples,
                })
                .collect(),
        },
        Err(e) => error_response(e),
    }
}

/// Maps engine errors to protocol error kinds.
fn error_response(e: CqaError) -> Response {
    let kind = match &e {
        CqaError::TimedOut { .. } => ErrorKind::DeadlineExceeded,
        CqaError::Parse(_)
        | CqaError::UnknownName(_)
        | CqaError::InvalidParameter(_)
        | CqaError::ArityMismatch { .. }
        | CqaError::TypeMismatch { .. } => ErrorKind::BadRequest,
        CqaError::InvalidSynopsis(_) | CqaError::TooLarge(_) => ErrorKind::Internal,
    };
    Response::Error { kind, message: e.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the `.expect("spawn connection thread")` that used
    /// to live in the accept loop: the spawn-failure path sheds the
    /// connection with the same NDJSON error envelope every other
    /// rejection uses, so clients can parse it.
    #[test]
    fn connection_reject_is_a_structured_overloaded_error() {
        let line = connection_reject_line();
        assert!(line.ends_with('\n'), "NDJSON: one response per line");
        let parsed = Response::from_line(line.trim_end()).expect("reject line must parse");
        match parsed {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::Overloaded);
                assert!(message.contains("thread"), "message names the resource: {message}");
            }
            other => panic!("expected an error response, got {other:?}"),
        }
    }
}
