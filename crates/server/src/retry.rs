//! Client-side retries: exponential backoff with jitter under a budget.
//!
//! The chaos harness (`cqa-cli chaos`) injects transient faults — dropped
//! connections, torn writes, `overloaded` rejections — and the contract it
//! enforces is that clients absorb them: every request ends in a correct
//! answer or a documented, *non-retryable* structured error. This module
//! is the absorbing layer. [`RetryingClient`] wraps [`Client`] with:
//!
//! * reconnect-on-transport-error — a hung-up or torn connection is torn
//!   down and redialed on the next attempt;
//! * retry only when the failure is transient — transport errors and
//!   error envelopes whose kind is [`ErrorKind::retryable`] (`overloaded`,
//!   `internal`); `bad_request` and `deadline_exceeded` return immediately;
//! * exponential backoff with equal jitter, capped per step and bounded
//!   overall by a wall-clock budget;
//! * an `attempt` stamp on each retry (1, 2, …) so the server's
//!   `server_retried_requests_total` counter sees them.
//!
//! The backoff/decision math lives in [`RetryPolicy`] as pure functions of
//! (attempt, remaining budget, seeded RNG) — no clock, no ambient entropy —
//! so the tests below pin exact behaviour without sleeping.

use crate::client::Client;
use crate::metrics::MetricsSnapshot;
use crate::protocol::{QueryRequest, Response};
use cqa_common::{CqaError, Mt64, Result, Stopwatch};
use std::time::Duration;

/// How to retry: attempt ceiling, backoff shape, and total time budget.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (min 1).
    pub max_attempts: u32,
    /// Backoff ceiling before the first retry, milliseconds.
    pub base_delay_ms: u64,
    /// Per-step backoff ceiling, milliseconds; doubling stops here.
    pub cap_delay_ms: u64,
    /// Wall-clock budget across all attempts and sleeps, milliseconds.
    pub budget_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_delay_ms: 10, cap_delay_ms: 500, budget_ms: 5_000 }
    }
}

impl RetryPolicy {
    /// The backoff ceiling before retry number `retries_done + 1`:
    /// `base * 2^retries_done`, capped at [`RetryPolicy::cap_delay_ms`].
    pub fn ceiling_ms(&self, retries_done: u32) -> u64 {
        if retries_done >= 32 {
            self.cap_delay_ms
        } else {
            self.base_delay_ms.saturating_mul(1u64 << retries_done).min(self.cap_delay_ms)
        }
    }

    /// One backoff draw with equal jitter: uniform in
    /// `[ceiling/2, ceiling]`, so consecutive retries never collapse to
    /// zero wait but still decorrelate across clients sharing a plan.
    pub fn backoff_ms(&self, retries_done: u32, rng: &mut Mt64) -> u64 {
        let ceiling = self.ceiling_ms(retries_done);
        let half = ceiling / 2;
        half + rng.below(ceiling - half + 1)
    }

    /// Decides the next retry after `failed_attempts` failures (≥ 1):
    /// `Some(delay)` to sleep and go again, `None` to give up — because
    /// attempts are exhausted or the drawn delay does not fit in
    /// `remaining_budget_ms`. Pure in its arguments: no clock is read, and
    /// the only randomness is the caller's seeded `rng`.
    pub fn next_delay_ms(
        &self,
        failed_attempts: u32,
        remaining_budget_ms: u64,
        rng: &mut Mt64,
    ) -> Option<u64> {
        if failed_attempts >= self.max_attempts.max(1) {
            return None;
        }
        let delay = self.backoff_ms(failed_attempts - 1, rng);
        if delay >= remaining_budget_ms {
            return None;
        }
        Some(delay)
    }
}

/// Whether one query outcome is worth retrying: transport-level errors
/// (connection refused, server hung up, torn response line) always are —
/// the connection will be redialed — and error envelopes are exactly when
/// their kind says so ([`ErrorKind::retryable`]). Answers and non-retryable
/// envelopes are final.
///
/// [`ErrorKind::retryable`]: crate::protocol::ErrorKind::retryable
pub fn outcome_is_retryable(outcome: &Result<Response>) -> bool {
    match outcome {
        Err(_) => true,
        Ok(Response::Error { kind, .. }) => kind.retryable(),
        Ok(_) => false,
    }
}

/// A [`Client`] that redials and retries transient failures by policy.
pub struct RetryingClient {
    addr: String,
    policy: RetryPolicy,
    rng: Mt64,
    conn: Option<Client>,
    retries: u64,
    reconnects: u64,
}

impl RetryingClient {
    /// Dials the server; the seed drives jitter only, so two clients with
    /// the same seed draw identical backoff sequences.
    pub fn connect(addr: &str, policy: RetryPolicy, seed: u64) -> Result<RetryingClient> {
        let conn = Client::connect(addr)?;
        Ok(RetryingClient {
            addr: addr.to_owned(),
            policy,
            rng: Mt64::new(seed),
            conn: Some(conn),
            retries: 0,
            reconnects: 0,
        })
    }

    /// Retries performed so far (sleeps taken, across all queries).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reconnects performed so far after transport-level failures.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn conn(&mut self) -> Result<&mut Client> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect(self.addr.as_str())?);
            self.reconnects += 1;
        }
        // The slot was just filled above; shed with a transport-shaped
        // error rather than panic if that ever stops holding.
        self.conn
            .as_mut()
            .ok_or_else(|| CqaError::Parse("connection slot empty after redial".to_owned()))
    }

    /// Runs one query, absorbing transient failures. Returns the first
    /// final outcome: an answer, a non-retryable error envelope, or — once
    /// attempts or budget run out — the last transient failure as-is.
    pub fn query(&mut self, request: &QueryRequest) -> Result<Response> {
        let wall = Stopwatch::start();
        let mut failed_attempts: u32 = 0;
        loop {
            let outcome = match self.conn() {
                Ok(client) => {
                    let mut attempt_req = request.clone();
                    attempt_req.attempt = u64::from(failed_attempts);
                    client.query(attempt_req)
                }
                Err(e) => Err(e),
            };
            if !outcome_is_retryable(&outcome) {
                return outcome;
            }
            if outcome.is_err() {
                // Transport failure: the connection state is unknown
                // (half-written line, server hung up) — drop it and
                // redial on the next attempt.
                self.conn = None;
            }
            failed_attempts += 1;
            let remaining_ms =
                self.policy.budget_ms.saturating_sub((wall.elapsed_secs() * 1000.0) as u64);
            match self.policy.next_delay_ms(failed_attempts, remaining_ms, &mut self.rng) {
                Some(delay_ms) => {
                    self.retries += 1;
                    std::thread::sleep(Duration::from_millis(delay_ms));
                }
                None => return outcome,
            }
        }
    }

    /// Fetches the server's metrics snapshot (redialing first if the last
    /// query left the connection torn down, but never retrying).
    pub fn stats(&mut self) -> Result<MetricsSnapshot> {
        let result = self.conn()?.stats();
        if result.is_err() {
            self.conn = None;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrorKind;
    use cqa_common::CqaError;

    fn policy() -> RetryPolicy {
        RetryPolicy { max_attempts: 5, base_delay_ms: 10, cap_delay_ms: 100, budget_ms: 1_000 }
    }

    #[test]
    fn ceilings_double_then_cap() {
        let p = policy();
        assert_eq!(p.ceiling_ms(0), 10);
        assert_eq!(p.ceiling_ms(1), 20);
        assert_eq!(p.ceiling_ms(2), 40);
        assert_eq!(p.ceiling_ms(3), 80);
        assert_eq!(p.ceiling_ms(4), 100);
        assert_eq!(p.ceiling_ms(63), 100, "huge retry counts must not overflow the shift");
    }

    #[test]
    fn jitter_stays_inside_the_equal_jitter_envelope() {
        let p = policy();
        let mut rng = Mt64::new(7);
        for retries_done in 0..6 {
            let ceiling = p.ceiling_ms(retries_done);
            for _ in 0..200 {
                let d = p.backoff_ms(retries_done, &mut rng);
                assert!(
                    d >= ceiling / 2 && d <= ceiling,
                    "draw {d} outside [{}, {ceiling}] at retry {retries_done}",
                    ceiling / 2
                );
            }
        }
    }

    #[test]
    fn jitter_is_deterministic_in_the_seed() {
        let p = policy();
        let draw = |seed: u64| -> Vec<u64> {
            let mut rng = Mt64::new(seed);
            (0..4).map(|r| p.backoff_ms(r, &mut rng)).collect()
        };
        assert_eq!(draw(42), draw(42), "same seed must replay the same backoff sequence");
        assert_ne!(draw(42), draw(43), "different seeds should decorrelate backoff");
    }

    #[test]
    fn attempts_exhaust() {
        let p = policy();
        let mut rng = Mt64::new(1);
        assert!(p.next_delay_ms(1, u64::MAX, &mut rng).is_some());
        assert!(p.next_delay_ms(4, u64::MAX, &mut rng).is_some());
        assert!(p.next_delay_ms(5, u64::MAX, &mut rng).is_none(), "max_attempts is inclusive");
        assert!(p.next_delay_ms(6, u64::MAX, &mut rng).is_none());
    }

    #[test]
    fn budget_exhaustion_stops_retries() {
        let p = policy();
        let mut rng = Mt64::new(1);
        // The first retry's delay is uniform in [5, 10] ms; a 4 ms budget
        // can never fit it, a generous one always does.
        assert!(p.next_delay_ms(1, 4, &mut rng).is_none());
        assert!(p.next_delay_ms(1, 1_000, &mut rng).is_some());
        assert!(p.next_delay_ms(1, 0, &mut rng).is_none(), "an empty budget never retries");
    }

    #[test]
    fn only_transient_outcomes_are_retryable() {
        let envelope = |kind: ErrorKind| -> Result<Response> {
            Ok(Response::Error { kind, message: "m".to_owned() })
        };
        assert!(outcome_is_retryable(&envelope(ErrorKind::Overloaded)));
        assert!(outcome_is_retryable(&envelope(ErrorKind::Internal)));
        assert!(!outcome_is_retryable(&envelope(ErrorKind::BadRequest)));
        assert!(!outcome_is_retryable(&envelope(ErrorKind::DeadlineExceeded)));
        assert!(outcome_is_retryable(&Err(CqaError::Parse(
            "server closed the connection".to_owned()
        ))));
        assert!(!outcome_is_retryable(&Ok(Response::Pong { version: 1 })));
    }

    #[test]
    fn zero_max_attempts_behaves_like_one() {
        let p = RetryPolicy { max_attempts: 0, ..policy() };
        let mut rng = Mt64::new(1);
        assert!(p.next_delay_ms(1, u64::MAX, &mut rng).is_none());
    }
}
