//! Live server metrics: atomic counters and a log-scale latency histogram.
//!
//! Everything here is updated with relaxed atomics on the hot path — no
//! locks, no allocation — and read by the `stats` protocol command. The
//! histogram buckets latencies by power of two microseconds (bucket `i`
//! covers `[2^i, 2^{i+1})` µs), which spans 1 µs to over an hour in 32
//! buckets with ≤ 2× relative error on reported percentiles — the same
//! trade Prometheus-style exponential histograms make.

use cqa_common::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 32;

/// A fixed-bucket log₂ histogram of microsecond latencies.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = (micros.max(1).ilog2() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0.0;
        }
        self.sum_micros.load(Ordering::Relaxed) as f64 / count as f64 / 1000.0
    }

    /// Approximate `q`-quantile (`0 < q ≤ 1`) in milliseconds: the upper
    /// edge of the bucket containing the `⌈q·n⌉`-th observation, i.e. an
    /// overestimate by at most 2×.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << (i + 1)) as f64 / 1000.0;
            }
        }
        (1u64 << BUCKETS) as f64 / 1000.0
    }
}

/// Counters for one server instance.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Protocol requests accepted for processing (all commands).
    pub requests: AtomicU64,
    /// `query` requests answered successfully.
    pub queries_ok: AtomicU64,
    /// Requests rejected because the admission queue was full.
    pub rejected_overloaded: AtomicU64,
    /// Requests that ran out of deadline.
    pub rejected_deadline: AtomicU64,
    /// Malformed requests.
    pub rejected_bad_request: AtomicU64,
    /// Unexpected server-side failures.
    pub errors_internal: AtomicU64,
    /// Connections accepted over the listener's lifetime.
    pub connections: AtomicU64,
    /// End-to-end latency of successful `query` requests, admission to
    /// response.
    pub query_latency: LatencyHistogram,
}

/// A plain-data copy of [`Metrics`] plus the cache counters, as reported
/// to clients.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Protocol requests accepted for processing.
    pub requests: u64,
    /// Successful `query` requests.
    pub queries_ok: u64,
    /// `overloaded` rejections.
    pub rejected_overloaded: u64,
    /// `deadline_exceeded` rejections.
    pub rejected_deadline: u64,
    /// `bad_request` rejections.
    pub rejected_bad_request: u64,
    /// `internal` errors.
    pub errors_internal: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Successful-query latency count.
    pub latency_count: u64,
    /// Mean latency, milliseconds.
    pub latency_mean_ms: f64,
    /// Median latency, milliseconds (log-bucket upper edge).
    pub latency_p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub latency_p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub latency_p99_ms: f64,
    /// Synopsis-cache hits.
    pub cache_hits: u64,
    /// Synopsis-cache misses.
    pub cache_misses: u64,
    /// Synopsis-cache resident entries.
    pub cache_entries: usize,
    /// Synopsis-cache evictions.
    pub cache_evictions: u64,
}

impl Metrics {
    /// A fresh, zeroed metrics block.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Captures a snapshot, merging in the cache's counters.
    pub fn snapshot(&self, cache: &crate::cache::CacheStats) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_bad_request: self.rejected_bad_request.load(Ordering::Relaxed),
            errors_internal: self.errors_internal.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            latency_count: self.query_latency.count(),
            latency_mean_ms: self.query_latency.mean_ms(),
            latency_p50_ms: self.query_latency.quantile_ms(0.50),
            latency_p95_ms: self.query_latency.quantile_ms(0.95),
            latency_p99_ms: self.query_latency.quantile_ms(0.99),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_entries: cache.entries,
            cache_evictions: cache.evictions,
        }
    }
}

impl MetricsSnapshot {
    /// The `stats` payload.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("requests", Json::from(self.requests)),
            ("queries_ok", Json::from(self.queries_ok)),
            ("rejected_overloaded", Json::from(self.rejected_overloaded)),
            ("rejected_deadline", Json::from(self.rejected_deadline)),
            ("rejected_bad_request", Json::from(self.rejected_bad_request)),
            ("errors_internal", Json::from(self.errors_internal)),
            ("connections", Json::from(self.connections)),
            ("latency_count", Json::from(self.latency_count)),
            ("latency_mean_ms", Json::from(self.latency_mean_ms)),
            ("latency_p50_ms", Json::from(self.latency_p50_ms)),
            ("latency_p95_ms", Json::from(self.latency_p95_ms)),
            ("latency_p99_ms", Json::from(self.latency_p99_ms)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("cache_entries", Json::from(self.cache_entries)),
            ("cache_evictions", Json::from(self.cache_evictions)),
        ])
    }

    /// Parses a `stats` payload received from a server.
    pub fn from_json(v: &Json) -> cqa_common::Result<MetricsSnapshot> {
        let int = |key: &str| -> cqa_common::Result<u64> {
            v.get(key).and_then(Json::as_u64).ok_or_else(|| {
                cqa_common::CqaError::Parse(format!("stats missing integer field '{key}'"))
            })
        };
        Ok(MetricsSnapshot {
            requests: int("requests")?,
            queries_ok: int("queries_ok")?,
            rejected_overloaded: int("rejected_overloaded")?,
            rejected_deadline: int("rejected_deadline")?,
            rejected_bad_request: int("rejected_bad_request")?,
            errors_internal: int("errors_internal")?,
            connections: int("connections")?,
            latency_count: int("latency_count")?,
            latency_mean_ms: v.req_f64("latency_mean_ms")?,
            latency_p50_ms: v.req_f64("latency_p50_ms")?,
            latency_p95_ms: v.req_f64("latency_p95_ms")?,
            latency_p99_ms: v.req_f64("latency_p99_ms")?,
            cache_hits: int("cache_hits")?,
            cache_misses: int("cache_misses")?,
            cache_entries: int("cache_entries")? as usize,
            cache_evictions: int("cache_evictions")?,
        })
    }

    /// Cache hit rate over lookups, 0 when untouched.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::new();
        for micros in [1u64, 3, 100, 1000, 100_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 5);
        // p100 falls in the 100 ms decade: bucket ⌊log2(100000)⌋ = 16,
        // upper edge 2^17 µs = 131.072 ms.
        assert_eq!(h.quantile_ms(1.0), 131.072);
        // The median observation (100 µs) lands in [64, 128) µs.
        assert_eq!(h.quantile_ms(0.5), 0.128);
    }

    #[test]
    fn histogram_quantiles_overestimate_by_at_most_2x() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        let p95 = h.quantile_ms(0.95) * 1000.0; // back to µs
        assert!((950.0..=2.0 * 950.0).contains(&p95), "p95 estimate {p95} µs");
        assert!((h.mean_ms() - 0.5005).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ms(0.99), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let m = Metrics::new();
        m.requests.fetch_add(7, Ordering::Relaxed);
        m.queries_ok.fetch_add(5, Ordering::Relaxed);
        m.query_latency.record(Duration::from_millis(3));
        let cache = CacheStats { hits: 4, misses: 1, entries: 1, evictions: 0, capacity: 8 };
        let snap = m.snapshot(&cache);
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.cache_hit_rate(), 0.8);
    }
}
