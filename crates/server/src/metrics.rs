//! Live server metrics on top of the shared [`cqa_obs`] registry.
//!
//! Everything here is updated with relaxed atomics on the hot path — no
//! locks, no allocation — and read by the `stats` protocol command. Each
//! server instance owns its own [`Registry`] so embedded and test
//! deployments stay isolated from each other and from the process-global
//! registry the library crates record into. The same handles render to
//! both the JSON snapshot (the wire format clients parse) and Prometheus
//! text exposition.

use cqa_common::Json;
use cqa_obs::{Counter, Gauge, Histogram, Registry};

/// The server's latency histogram: a log₂-bucketed [`cqa_obs::Histogram`]
/// (bucket `i` covers `[2^i, 2^{i+1})` µs). Kept as an alias so existing
/// call sites and tests keep reading naturally.
pub type LatencyHistogram = Histogram;

/// Counters for one server instance, registered in a per-instance
/// [`Registry`].
#[derive(Debug)]
pub struct Metrics {
    registry: Registry,
    /// Protocol requests accepted for processing (all commands).
    pub requests: Counter,
    /// `query` requests answered successfully.
    pub queries_ok: Counter,
    /// Requests rejected because the admission queue was full.
    pub rejected_overloaded: Counter,
    /// Requests that ran out of deadline.
    pub rejected_deadline: Counter,
    /// Malformed requests.
    pub rejected_bad_request: Counter,
    /// Unexpected server-side failures.
    pub errors_internal: Counter,
    /// Connections accepted over the listener's lifetime.
    pub connections: Counter,
    /// Query requests that arrived stamped `attempt > 0` — retries whose
    /// earlier attempts hit a transient fault the client retry layer
    /// absorbed.
    pub retried_requests: Counter,
    /// End-to-end latency of successful `query` requests, admission to
    /// response.
    pub query_latency: LatencyHistogram,
    /// Time a `query` request spent in the admission queue before a worker
    /// picked it up.
    pub queue_wait: LatencyHistogram,
    /// Requests tail-sampled into the flight recorder's slow/error log.
    pub slow_requests: Counter,
    /// Samples the most recent query drew (a per-request gauge derived
    /// from the convergence telemetry).
    pub last_request_samples: Gauge,
    /// The most recent query's terminal CI half-width, parts per million.
    pub last_request_ci_ppm: Gauge,
    /// Flight-recorder digests lost to ring wrap, mirrored from
    /// [`cqa_obs::flight`] at render time.
    flight_dropped: Gauge,
    /// Slow/error-log resident entries, mirrored at render time.
    slowlog_entries: Gauge,
    /// Synopsis-cache counters, mirrored from [`crate::cache::CacheStats`]
    /// at render time (the cache keeps its own atomics).
    cache_hits: Counter,
    cache_misses: Counter,
    cache_canonical_rekeys: Counter,
    cache_entries: Gauge,
    cache_evictions: Counter,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// A plain-data copy of [`Metrics`] plus the cache counters, as reported
/// to clients.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Protocol requests accepted for processing.
    pub requests: u64,
    /// Successful `query` requests.
    pub queries_ok: u64,
    /// `overloaded` rejections.
    pub rejected_overloaded: u64,
    /// `deadline_exceeded` rejections.
    pub rejected_deadline: u64,
    /// `bad_request` rejections.
    pub rejected_bad_request: u64,
    /// `internal` errors.
    pub errors_internal: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Query requests that arrived stamped as retries (`attempt > 0`).
    pub retried_requests: u64,
    /// Successful-query latency count.
    pub latency_count: u64,
    /// Mean latency, milliseconds.
    pub latency_mean_ms: f64,
    /// Median latency, milliseconds (log-bucket upper edge).
    pub latency_p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub latency_p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub latency_p99_ms: f64,
    /// 99.9th-percentile latency, milliseconds.
    pub latency_p999_ms: f64,
    /// Requests tail-sampled into the slow/error log.
    pub slow_requests: u64,
    /// Samples the most recent query drew.
    pub last_request_samples: u64,
    /// The most recent query's terminal CI half-width, parts per million.
    pub last_request_ci_ppm: u64,
    /// Flight-recorder digests lost to ring wrap.
    pub flight_dropped: u64,
    /// Slow/error-log resident entries.
    pub slowlog_entries: u64,
    /// Synopsis-cache hits.
    pub cache_hits: u64,
    /// Synopsis-cache misses.
    pub cache_misses: u64,
    /// Cache hits whose literal query text differed from the inserting
    /// request's — hits only canonicalization made possible.
    pub cache_canonical_rekeys: u64,
    /// Synopsis-cache resident entries.
    pub cache_entries: usize,
    /// Synopsis-cache evictions.
    pub cache_evictions: u64,
}

impl Metrics {
    /// A fresh, zeroed metrics block with its own registry.
    pub fn new() -> Metrics {
        let registry = Registry::new();
        let requests = registry.counter(
            "server_requests_total",
            "Protocol requests accepted for processing (all commands).",
        );
        let queries_ok =
            registry.counter("server_queries_ok_total", "Query requests answered successfully.");
        let rejected_overloaded = registry.counter(
            "server_rejected_overloaded_total",
            "Requests rejected because the admission queue was full.",
        );
        let rejected_deadline = registry
            .counter("server_rejected_deadline_total", "Requests that ran out of deadline.");
        let rejected_bad_request =
            registry.counter("server_rejected_bad_request_total", "Malformed requests.");
        let errors_internal =
            registry.counter("server_errors_internal_total", "Unexpected server-side failures.");
        let connections = registry.counter(
            "server_connections_total",
            "Connections accepted over the listener's lifetime.",
        );
        let retried_requests = registry.counter(
            "server_retried_requests_total",
            "Query requests that arrived stamped as retries (attempt > 0).",
        );
        let query_latency = registry.histogram(
            "server_query_latency",
            "End-to-end latency of successful query requests, admission to response.",
        );
        let queue_wait = registry
            .histogram("server_queue_wait", "Time a query request spent in the admission queue.");
        let slow_requests = registry.counter(
            "server_slow_requests_total",
            "Requests tail-sampled into the flight recorder's slow/error log.",
        );
        let last_request_samples = registry
            .gauge("server_last_request_samples", "Samples the most recent query request drew.");
        let last_request_ci_ppm = registry.gauge(
            "server_last_request_ci_half_width_ppm",
            "The most recent query's terminal CI half-width, parts per million.",
        );
        let flight_dropped =
            registry.gauge("server_flight_dropped", "Flight-recorder digests lost to ring wrap.");
        let slowlog_entries =
            registry.gauge("server_slowlog_entries", "Slow/error-log resident entries.");
        let cache_hits = registry.counter("server_cache_hits_total", "Synopsis-cache hits.");
        let cache_misses = registry.counter("server_cache_misses_total", "Synopsis-cache misses.");
        let cache_canonical_rekeys = registry.counter(
            "server_cache_canonical_rekeys_total",
            "Cache hits under a different literal query text than the inserting request's.",
        );
        let cache_entries =
            registry.gauge("server_cache_entries", "Synopsis-cache resident entries.");
        let cache_evictions =
            registry.counter("server_cache_evictions_total", "Synopsis-cache evictions.");
        Metrics {
            registry,
            requests,
            queries_ok,
            rejected_overloaded,
            rejected_deadline,
            rejected_bad_request,
            errors_internal,
            connections,
            retried_requests,
            query_latency,
            queue_wait,
            slow_requests,
            last_request_samples,
            last_request_ci_ppm,
            flight_dropped,
            slowlog_entries,
            cache_hits,
            cache_misses,
            cache_canonical_rekeys,
            cache_entries,
            cache_evictions,
        }
    }

    /// Mirrors the cache's own counters into the registry so a render sees
    /// current values.
    fn sync_cache(&self, cache: &crate::cache::CacheStats) {
        self.cache_hits.set(cache.hits);
        self.cache_misses.set(cache.misses);
        self.cache_canonical_rekeys.set(cache.canonical_rekeys);
        self.cache_entries.set(cache.entries as i64);
        self.cache_evictions.set(cache.evictions);
    }

    /// Mirrors the flight recorder's process-global occupancy gauges so a
    /// render sees current values.
    fn sync_flight(&self) {
        self.flight_dropped.set(cqa_obs::flight::dropped_count().min(i64::MAX as u64) as i64);
        self.slowlog_entries.set(cqa_obs::flight::slowlog_len() as i64);
    }

    /// Captures a snapshot, merging in the cache's counters.
    pub fn snapshot(&self, cache: &crate::cache::CacheStats) -> MetricsSnapshot {
        // One bucket snapshot for all four quantiles, so they are mutually
        // consistent even while workers keep recording.
        let latency_qs = self.query_latency.quantiles_ms(&[0.50, 0.95, 0.99, 0.999]);
        MetricsSnapshot {
            requests: self.requests.get(),
            queries_ok: self.queries_ok.get(),
            rejected_overloaded: self.rejected_overloaded.get(),
            rejected_deadline: self.rejected_deadline.get(),
            rejected_bad_request: self.rejected_bad_request.get(),
            errors_internal: self.errors_internal.get(),
            connections: self.connections.get(),
            retried_requests: self.retried_requests.get(),
            latency_count: self.query_latency.count(),
            latency_mean_ms: self.query_latency.mean_ms(),
            latency_p50_ms: latency_qs[0],
            latency_p95_ms: latency_qs[1],
            latency_p99_ms: latency_qs[2],
            latency_p999_ms: latency_qs[3],
            slow_requests: self.slow_requests.get(),
            last_request_samples: self.last_request_samples.get().max(0) as u64,
            last_request_ci_ppm: self.last_request_ci_ppm.get().max(0) as u64,
            flight_dropped: cqa_obs::flight::dropped_count(),
            slowlog_entries: cqa_obs::flight::slowlog_len() as u64,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_canonical_rekeys: cache.canonical_rekeys,
            cache_entries: cache.entries,
            cache_evictions: cache.evictions,
        }
    }

    /// The `stats` JSON payload: the flat snapshot fields (the stable wire
    /// format) plus the full registry render under `"registry"`.
    pub fn stats_json(&self, cache: &crate::cache::CacheStats) -> Json {
        self.sync_cache(cache);
        self.sync_flight();
        let mut obj = self.snapshot(cache).to_json_map();
        obj.insert("registry".to_owned(), self.registry.to_json());
        Json::Obj(obj)
    }

    /// The full registry in Prometheus text exposition format.
    pub fn to_prometheus(&self, cache: &crate::cache::CacheStats) -> String {
        self.sync_cache(cache);
        self.sync_flight();
        self.registry.to_prometheus()
    }
}

impl MetricsSnapshot {
    /// The flat `stats` payload.
    pub fn to_json(&self) -> Json {
        Json::Obj(self.to_json_map())
    }

    /// [`MetricsSnapshot::to_json`] as the underlying map, for callers that
    /// splice extra keys in (avoids a match-and-unreachable round trip).
    fn to_json_map(&self) -> std::collections::BTreeMap<String, Json> {
        let pairs = [
            ("requests", Json::from(self.requests)),
            ("queries_ok", Json::from(self.queries_ok)),
            ("rejected_overloaded", Json::from(self.rejected_overloaded)),
            ("rejected_deadline", Json::from(self.rejected_deadline)),
            ("rejected_bad_request", Json::from(self.rejected_bad_request)),
            ("errors_internal", Json::from(self.errors_internal)),
            ("connections", Json::from(self.connections)),
            ("retried_requests", Json::from(self.retried_requests)),
            ("latency_count", Json::from(self.latency_count)),
            ("latency_mean_ms", Json::from(self.latency_mean_ms)),
            ("latency_p50_ms", Json::from(self.latency_p50_ms)),
            ("latency_p95_ms", Json::from(self.latency_p95_ms)),
            ("latency_p99_ms", Json::from(self.latency_p99_ms)),
            ("latency_p999_ms", Json::from(self.latency_p999_ms)),
            ("slow_requests", Json::from(self.slow_requests)),
            ("last_request_samples", Json::from(self.last_request_samples)),
            ("last_request_ci_ppm", Json::from(self.last_request_ci_ppm)),
            ("flight_dropped", Json::from(self.flight_dropped)),
            ("slowlog_entries", Json::from(self.slowlog_entries)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("cache_canonical_rekeys", Json::from(self.cache_canonical_rekeys)),
            ("cache_entries", Json::from(self.cache_entries)),
            ("cache_evictions", Json::from(self.cache_evictions)),
        ];
        pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect()
    }

    /// Parses a `stats` payload received from a server. Unknown keys (such
    /// as the nested `registry` object) are ignored.
    pub fn from_json(v: &Json) -> cqa_common::Result<MetricsSnapshot> {
        // A nested fn (not a closure) so cqa-lint's call graph can see
        // through the call.
        fn int(v: &Json, key: &str) -> cqa_common::Result<u64> {
            v.get(key).and_then(Json::as_u64).ok_or_else(|| {
                cqa_common::CqaError::Parse(format!("stats missing integer field '{key}'"))
            })
        }
        Ok(MetricsSnapshot {
            requests: int(v, "requests")?,
            queries_ok: int(v, "queries_ok")?,
            rejected_overloaded: int(v, "rejected_overloaded")?,
            rejected_deadline: int(v, "rejected_deadline")?,
            rejected_bad_request: int(v, "rejected_bad_request")?,
            errors_internal: int(v, "errors_internal")?,
            connections: int(v, "connections")?,
            // Absent in payloads from servers predating the retry layer.
            retried_requests: v.get("retried_requests").and_then(Json::as_u64).unwrap_or(0),
            latency_count: int(v, "latency_count")?,
            latency_mean_ms: v.req_f64("latency_mean_ms")?,
            latency_p50_ms: v.req_f64("latency_p50_ms")?,
            latency_p95_ms: v.req_f64("latency_p95_ms")?,
            latency_p99_ms: v.req_f64("latency_p99_ms")?,
            // Absent in payloads from servers predating the p999 field.
            latency_p999_ms: v.get("latency_p999_ms").and_then(Json::as_f64).unwrap_or(0.0),
            // All five absent in payloads predating the flight recorder.
            slow_requests: v.get("slow_requests").and_then(Json::as_u64).unwrap_or(0),
            last_request_samples: v.get("last_request_samples").and_then(Json::as_u64).unwrap_or(0),
            last_request_ci_ppm: v.get("last_request_ci_ppm").and_then(Json::as_u64).unwrap_or(0),
            flight_dropped: v.get("flight_dropped").and_then(Json::as_u64).unwrap_or(0),
            slowlog_entries: v.get("slowlog_entries").and_then(Json::as_u64).unwrap_or(0),
            cache_hits: int(v, "cache_hits")?,
            cache_misses: int(v, "cache_misses")?,
            // Absent in payloads from servers predating canonicalization.
            cache_canonical_rekeys: v
                .get("cache_canonical_rekeys")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            cache_entries: int(v, "cache_entries")? as usize,
            cache_evictions: int(v, "cache_evictions")?,
        })
    }

    /// Cache hit rate over lookups, 0 when untouched.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;
    use std::time::Duration;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::new();
        for micros in [1u64, 3, 100, 1000, 100_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 5);
        // p100 falls in the 100 ms decade: bucket ⌊log2(100000)⌋ = 16,
        // upper edge 2^17 µs = 131.072 ms.
        assert_eq!(h.quantile_ms(1.0), 131.072);
        // The median observation (100 µs) lands in [64, 128) µs.
        assert_eq!(h.quantile_ms(0.5), 0.128);
    }

    #[test]
    fn histogram_quantiles_overestimate_by_at_most_2x() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        let p95 = h.quantile_ms(0.95) * 1000.0; // back to µs
        assert!((950.0..=2.0 * 950.0).contains(&p95), "p95 estimate {p95} µs");
        assert!((h.mean_ms() - 0.5005).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ms(0.99), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let m = Metrics::new();
        m.requests.add(7);
        m.queries_ok.add(5);
        m.query_latency.record(Duration::from_millis(3));
        let cache = CacheStats {
            hits: 4,
            misses: 1,
            canonical_rekeys: 2,
            entries: 1,
            evictions: 0,
            capacity: 8,
        };
        let snap = m.snapshot(&cache);
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.cache_canonical_rekeys, 2);
        assert_eq!(parsed.cache_hit_rate(), 0.8);
        // Payloads from servers that predate the rekey counter still parse.
        let mut legacy = match snap.to_json() {
            Json::Obj(m) => m,
            _ => unreachable!(),
        };
        legacy.remove("cache_canonical_rekeys");
        let parsed = MetricsSnapshot::from_json(&Json::Obj(legacy)).unwrap();
        assert_eq!(parsed.cache_canonical_rekeys, 0);
    }

    #[test]
    fn snapshot_reports_consistent_tail_quantiles() {
        let m = Metrics::new();
        for micros in [100u64, 200, 400, 800, 100_000] {
            m.query_latency.record(Duration::from_micros(micros));
        }
        let cache = CacheStats {
            hits: 0,
            misses: 0,
            canonical_rekeys: 0,
            entries: 0,
            evictions: 0,
            capacity: 8,
        };
        let snap = m.snapshot(&cache);
        // p999 is at least p99 and present on the wire.
        assert!(snap.latency_p999_ms >= snap.latency_p99_ms);
        assert!(snap.latency_p999_ms > 0.0);
        let j = snap.to_json();
        assert!(j.get("latency_p999_ms").and_then(Json::as_f64).is_some());
        // Payloads from servers that predate p999 still parse, reading 0.
        let mut legacy = match j {
            Json::Obj(m) => m,
            _ => unreachable!(),
        };
        legacy.remove("latency_p999_ms");
        let parsed = MetricsSnapshot::from_json(&Json::Obj(legacy)).unwrap();
        assert_eq!(parsed.latency_p999_ms, 0.0);
    }

    #[test]
    fn stats_json_nests_the_registry_and_stays_parseable() {
        let m = Metrics::new();
        m.requests.add(3);
        m.queries_ok.add(2);
        m.query_latency.record(Duration::from_micros(500));
        let cache = CacheStats {
            hits: 1,
            misses: 2,
            canonical_rekeys: 0,
            entries: 2,
            evictions: 0,
            capacity: 8,
        };
        let v = m.stats_json(&cache);
        // The flat wire fields survive unchanged…
        let parsed = MetricsSnapshot::from_json(&v).unwrap();
        assert_eq!(parsed.requests, 3);
        // …and the registry render agrees with them.
        let reg = v.get("registry").expect("registry key");
        assert_eq!(reg.get("server_requests_total").and_then(Json::as_u64), Some(3));
        assert_eq!(reg.get("server_cache_misses_total").and_then(Json::as_u64), Some(2));
        let lat = reg.get("server_query_latency").expect("latency histogram");
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn prometheus_text_reflects_the_counters() {
        let m = Metrics::new();
        m.requests.add(9);
        m.connections.inc();
        m.query_latency.record(Duration::from_micros(100));
        let cache = CacheStats {
            hits: 5,
            misses: 3,
            canonical_rekeys: 2,
            entries: 3,
            evictions: 1,
            capacity: 8,
        };
        let text = m.to_prometheus(&cache);
        assert!(text.contains("# TYPE server_requests_total counter"), "{text}");
        assert!(text.contains("server_requests_total 9"), "{text}");
        assert!(text.contains("server_cache_hits_total 5"), "{text}");
        assert!(text.contains("server_cache_canonical_rekeys_total 2"), "{text}");
        assert!(text.contains("server_cache_entries 3"), "{text}");
        assert!(text.contains("# TYPE server_query_latency histogram"), "{text}");
        assert!(text.contains("server_query_latency_count 1"), "{text}");
        assert!(text.contains("server_query_latency_bucket{le=\"+Inf\"} 1"), "{text}");
    }
}
