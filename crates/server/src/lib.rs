#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `cqa-server` — a long-lived approximate-CQA service.
//!
//! The batch binaries rebuild every synopsis from scratch per invocation;
//! preprocessing dominates their cost (Fig. 3 of the paper). This crate
//! amortizes it: a TCP daemon loads a database dump once, caches built
//! synopses keyed by `(database fingerprint, constraint-set fingerprint,
//! canonical query fingerprint)` — so α-equivalent spellings of a query
//! share one entry — and answers approximate-CQA requests over a versioned
//! line-delimited JSON protocol (see `docs/PROTOCOL.md`). Components:
//!
//! * [`protocol`] — request/response types and their wire encoding.
//! * [`cache`] — the sharded LRU synopsis cache with hit/miss accounting.
//! * [`pool`] — the worker pool with bounded-queue admission control and
//!   per-request deadlines.
//! * [`metrics`] — a per-instance [`cqa_obs`] metrics registry (counters
//!   and log-scale latency histograms), served by the protocol's `stats`
//!   command as JSON or Prometheus text.
//! * [`server`] — the TCP daemon. Every request carries a request id
//!   (client-supplied `request_id` or server-generated) and leaves a
//!   digest in the always-on [`cqa_obs::flight`] recorder, dumped by the
//!   protocol's `debug flight` / `debug slowlog` commands.
//! * [`client`] — the blocking client library the CLI subcommands use.
//! * [`retry`] — the retrying client layer: exponential backoff with
//!   jitter under a budget, reconnect on transport errors, retry only on
//!   retryable structured errors (see `docs/RELIABILITY.md`).
//! * [`loadgen`] — the closed-loop load generator behind `cqa-cli
//!   bench-serve` and the `cqa-perf` server suite.
//! * [`chaos`] — the chaos runner behind `cqa-cli chaos`: replays
//!   bench-serve load under a seeded [`cqa_chaos`] fault plan and checks
//!   the reliability invariants.

pub mod cache;
pub mod chaos;
pub mod client;
pub mod loadgen;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod retry;
pub mod server;

pub use cache::{CacheKey, CacheStats, SynopsisCache};
pub use chaos::{run_chaos, ChaosReport, ChaosSpec};
pub use client::Client;
pub use loadgen::{run_load, LoadReport, LoadSpec};
pub use metrics::{LatencyHistogram, Metrics, MetricsSnapshot};
pub use pool::{PoolConfig, SubmitError, WorkerPool};
pub use protocol::{
    DebugTarget, ErrorKind, QueryRequest, Request, Response, StatsFormat, WireAnswer, WireDigest,
    WireSlowlogEntry, PROTOCOL_VERSION,
};
pub use retry::{RetryPolicy, RetryingClient};
pub use server::{Server, ServerConfig, ServerHandle};
