//! A fixed-size worker pool with bounded-queue admission control.
//!
//! Query work runs on a small set of long-lived threads fed by a bounded
//! channel. `try_submit` never blocks: when the queue is full the job is
//! rejected immediately and the server answers `overloaded`, which keeps
//! the daemon's memory bounded and its latency honest under burst load
//! instead of letting an unbounded backlog grow. Deadlines are the other
//! half of admission control: the server stamps each request's deadline at
//! admission, so time spent waiting in this queue counts against it.

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Sizing knobs for a [`WorkerPool`].
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Worker thread count.
    pub workers: usize,
    /// Jobs that may wait in the queue before `overloaded` rejections
    /// start.
    pub queue_depth: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            queue_depth: 64,
        }
    }
}

/// Why a submission was refused. Both variants are request-shedding
/// outcomes the caller must answer with a structured protocol error —
/// nothing on this path panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue was full; reject as `overloaded`.
    Full {
        /// The queue depth that was exceeded.
        depth: usize,
    },
    /// The pool was [`close`](WorkerPool::close)d, or every worker exited;
    /// reject as `internal`.
    Shutdown,
}

/// A fixed set of worker threads draining a bounded job queue.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    queue_depth: usize,
}

impl WorkerPool {
    /// Spawns the worker threads. Fails cleanly (no partial pool is
    /// leaked: already-spawned workers exit when `tx`/`rx` drop) if the OS
    /// refuses a thread.
    pub fn new(config: PoolConfig) -> std::io::Result<WorkerPool> {
        let workers = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let (tx, rx) = channel::bounded::<Job>(queue_depth);
        let handles = (0..workers)
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                std::thread::Builder::new().name(format!("cqa-worker-{i}")).spawn(move || {
                    // Exits when every sender is gone (pool drop).
                    for job in rx.iter() {
                        // A panicking job (injected panic-in-worker, or a
                        // latent bug the no-panic lint missed) must not
                        // take the worker down: contain it, keep serving.
                        // The fault point sits inside the containment so
                        // an injected panic exercises the same path.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            // Chaos: a dropped handoff discards the job;
                            // its reply channel closes and the dispatcher
                            // answers a structured `internal` error.
                            if cqa_chaos::fault_point!("pool/handoff").is_some() {
                                return;
                            }
                            // cqa-lint: allow(opaque-call): jobs are the boxed closures built in server.rs, which the request-path seeds already cover
                            job();
                        }));
                    }
                })
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(WorkerPool { tx: Some(tx), handles, queue_depth })
    }

    /// Enqueues a job without blocking. An `Err` means the caller should
    /// shed the request with the corresponding protocol error.
    pub fn try_submit(
        &self,
        job: impl FnOnce() + Send + 'static,
    ) -> std::result::Result<(), SubmitError> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(SubmitError::Shutdown);
        };
        // Chaos: an injected submit failure is indistinguishable from a
        // full queue — the caller sheds the request as `overloaded`.
        if cqa_chaos::fault_point!("pool/submit").is_some() {
            return Err(SubmitError::Full { depth: self.queue_depth });
        }
        match tx.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(SubmitError::Full { depth: self.queue_depth }),
            // Disconnected means every worker's receiver is gone — the
            // workers all exited. Shed rather than panic.
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Shutdown),
        }
    }

    /// Stops accepting jobs. Queued jobs still drain; workers are joined
    /// on drop. Subsequent [`try_submit`](WorkerPool::try_submit) calls
    /// return [`SubmitError::Shutdown`].
    pub fn close(&mut self) {
        drop(self.tx.take());
    }

    /// Jobs currently waiting (excludes jobs already being run).
    pub fn queue_len(&self) -> usize {
        self.tx.as_ref().map(Sender::len).unwrap_or(0)
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }
}

impl Drop for WorkerPool {
    /// Waits for queued jobs to drain, then joins the workers.
    fn drop(&mut self) {
        drop(self.tx.take());
        let me = std::thread::current().id();
        for handle in self.handles.drain(..) {
            // The pool can be dropped *by one of its own workers*: the
            // last job closure in flight may own the final Arc to the
            // server's shared state, which embeds this pool. Joining
            // yourself is EDEADLK and std escalates it to a panic; that
            // worker is already exiting (its receiver just disconnected),
            // so it needs no join.
            if handle.thread().id() == me {
                continue;
            }
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::Arc;

    #[test]
    fn dropping_the_pool_from_a_worker_does_not_panic() {
        // A worker can end up owning the pool itself (via the last Arc to
        // the server's shared state). Its self-join used to EDEADLK-panic.
        let pool = WorkerPool::new(PoolConfig { workers: 2, queue_depth: 4 }).unwrap();
        let slot = Arc::new(std::sync::Mutex::new(Some(pool)));
        let (done_tx, done_rx) = mpsc::channel::<bool>();
        let job_slot = Arc::clone(&slot);
        slot.lock()
            .unwrap()
            .as_ref()
            .unwrap()
            .try_submit(move || {
                let pool = job_slot.lock().unwrap().take();
                drop(pool); // joins the sibling worker, must skip self
                done_tx.send(true).unwrap();
            })
            .unwrap();
        assert!(done_rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap());
    }

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::new(PoolConfig { workers: 3, queue_depth: 16 }).unwrap();
        assert_eq!(pool.workers(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            let job = move || {
                counter.fetch_add(1, Ordering::SeqCst);
            };
            // Spin on backpressure: the queue (depth 16) legitimately
            // fills while three workers drain fifty jobs.
            while pool.try_submit(job.clone()).is_err() {
                std::thread::yield_now();
            }
        }
        drop(pool); // joins after draining
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn rejects_when_queue_is_full() {
        let pool = WorkerPool::new(PoolConfig { workers: 1, queue_depth: 1 }).unwrap();
        // Wedge the single worker, then fill the queue.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        pool.try_submit(move || {
            release_rx.recv().unwrap();
        })
        .unwrap();
        // The wedge job may still be in the queue; keep adding until full.
        let mut rejected = None;
        for _ in 0..3 {
            if let Err(e) = pool.try_submit(|| {}) {
                rejected = Some(e);
                break;
            }
        }
        assert_eq!(rejected, Some(SubmitError::Full { depth: 1 }));
        release_tx.send(()).unwrap();
    }

    /// Regression for the `.expect("pool alive while not dropped")` /
    /// `unreachable!` that used to live in `try_submit`: a closed pool
    /// sheds submissions with `Shutdown` instead of panicking the request
    /// thread.
    #[test]
    fn closed_pool_sheds_instead_of_panicking() {
        let mut pool = WorkerPool::new(PoolConfig { workers: 1, queue_depth: 4 }).unwrap();
        pool.try_submit(|| {}).unwrap();
        pool.close();
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::Shutdown));
        assert_eq!(pool.queue_len(), 0, "a closed pool reports an empty queue");
    }

    /// A panicking job must not kill its worker: the pool stays at full
    /// strength and keeps running subsequent jobs. This is the containment
    /// that makes the chaos harness's `panic-in-worker` fault survivable.
    #[test]
    fn worker_survives_a_panicking_job() {
        let pool = WorkerPool::new(PoolConfig { workers: 1, queue_depth: 8 }).unwrap();
        pool.try_submit(|| panic!("injected job panic")).unwrap();
        let (done_tx, done_rx) = mpsc::channel::<bool>();
        // Same single worker: it must have survived to run this.
        pool.try_submit(move || {
            done_tx.send(true).unwrap();
        })
        .unwrap();
        assert!(done_rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap());
    }

    #[test]
    fn drop_waits_for_in_flight_jobs() {
        let pool = WorkerPool::new(PoolConfig { workers: 2, queue_depth: 8 }).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }
}
