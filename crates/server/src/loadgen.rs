//! The closed-loop load generator behind `cqa-cli bench-serve` and the
//! `cqa-perf` server suite.
//!
//! `clients` threads each issue `requests` queries back-to-back against a
//! running server, after one warmup query outside the measured window (so
//! the numbers reflect steady-state serving, not the first preprocessing
//! run). The result is a structured [`LoadReport`] — client-side sorted
//! latencies plus the server's own [`MetricsSnapshot`] — that callers
//! render ([`LoadReport::render`]) or feed into perf recordings.

use crate::client::Client;
use crate::metrics::MetricsSnapshot;
use crate::protocol::{ErrorKind, QueryRequest, Response};
use cqa_common::{percentile, CqaError, Mt64, Result, Stopwatch};
use cqa_core::Scheme;

/// What to run: the target, the query, and the load shape.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Server address (`host:port`).
    pub addr: String,
    /// Query text to issue.
    pub query: String,
    /// Approximation scheme requested.
    pub scheme: Scheme,
    /// ε for every request.
    pub eps: f64,
    /// δ for every request.
    pub delta: f64,
    /// Concurrent closed-loop clients (min 1).
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Root seed; per-request seeds derive from it deterministically.
    pub seed: u64,
    /// Per-request timeout forwarded to the server.
    pub timeout_ms: Option<u64>,
    /// Rewrite every issued request as a fresh α-equivalent spelling
    /// (shuffled atoms, renamed variables): any cache hits are hits the
    /// canonical key earned.
    pub permute: bool,
}

/// Tallies from one client thread.
#[derive(Debug, Default, Clone)]
pub struct ClientTally {
    /// Latencies of successful requests, milliseconds (unsorted).
    pub latencies_ms: Vec<f64>,
    /// Successful requests.
    pub ok: usize,
    /// Successful requests served from the synopsis cache.
    pub cached: usize,
    /// `overloaded` rejections.
    pub overloaded: usize,
    /// `deadline_exceeded` rejections.
    pub deadline: usize,
    /// Any other error response.
    pub other_errors: usize,
}

/// The aggregated result of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Clients that ran.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Wall-clock seconds for the measured window.
    pub elapsed_secs: f64,
    /// Merged tallies; `latencies_ms` is sorted ascending.
    pub tally: ClientTally,
    /// The server's own metrics after the run (its latency histogram,
    /// cache hit rate, …).
    pub server: MetricsSnapshot,
}

impl LoadReport {
    /// Total requests issued.
    pub fn total_requests(&self) -> usize {
        self.clients * self.requests
    }

    /// Offered-load throughput over the measured window.
    pub fn throughput_rps(&self) -> f64 {
        self.total_requests() as f64 / self.elapsed_secs.max(1e-9)
    }

    /// Client-observed latency percentile (`q` in 0–100), 0 when no
    /// request succeeded.
    pub fn client_latency_ms(&self, q: f64) -> f64 {
        if self.tally.latencies_ms.is_empty() {
            0.0
        } else {
            percentile(&self.tally.latencies_ms, q)
        }
    }

    /// The human-readable report `cqa-cli bench-serve` prints.
    pub fn render(&self) -> String {
        let mut report = format!(
            "bench-serve: {} requests over {} clients in {:.2}s ({:.0} req/s)\n",
            self.total_requests(),
            self.clients,
            self.elapsed_secs,
            self.throughput_rps(),
        );
        report.push_str(&format!(
            "  ok {} (cached {}), overloaded {}, deadline_exceeded {}, other {}\n",
            self.tally.ok,
            self.tally.cached,
            self.tally.overloaded,
            self.tally.deadline,
            self.tally.other_errors
        ));
        if !self.tally.latencies_ms.is_empty() {
            report.push_str(&format!(
                "  client latency ms: p50 {:.2}, p95 {:.2}, p99 {:.2}\n",
                self.client_latency_ms(50.0),
                self.client_latency_ms(95.0),
                self.client_latency_ms(99.0),
            ));
        }
        report.push_str(&format!(
            "  server: {} queries ok, cache hit rate {:.1}% ({} hits / {} misses, \
             {} canonical rekeys), latency ms p50 {:.2}, p95 {:.2}, p99 {:.2}, p999 {:.2}",
            self.server.queries_ok,
            self.server.cache_hit_rate() * 100.0,
            self.server.cache_hits,
            self.server.cache_misses,
            self.server.cache_canonical_rekeys,
            self.server.latency_p50_ms,
            self.server.latency_p95_ms,
            self.server.latency_p99_ms,
            self.server.latency_p999_ms,
        ));
        report
    }
}

/// Runs the closed-loop load described by `spec` and aggregates the
/// result. Fails fast if the warmup query errors (bad query text never
/// produces a misleading all-errors report).
pub fn run_load(spec: &LoadSpec) -> Result<LoadReport> {
    let clients = spec.clients.max(1);
    let request_for = |text: &str, seed: u64| QueryRequest {
        query: text.to_owned(),
        scheme: spec.scheme,
        eps: spec.eps,
        delta: spec.delta,
        timeout_ms: spec.timeout_ms,
        seed,
        request_id: None,
        attempt: 0,
    };
    let spelled = |req_seed: u64| -> Result<String> {
        if spec.permute {
            cqa_query::permute_query_text(&spec.query, &mut Mt64::new(req_seed))
        } else {
            Ok(spec.query.clone())
        }
    };
    // Warm the synopsis cache outside the measured window.
    let mut warm = Client::connect(spec.addr.as_str())?;
    if let Response::Error { kind, message } = warm.query(request_for(&spec.query, spec.seed))? {
        return Err(CqaError::InvalidParameter(format!(
            "warmup query failed: {} ({message})",
            kind.name()
        )));
    }
    let wall = Stopwatch::start();
    let tallies: Vec<Result<ClientTally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let request_for = &request_for;
                let spelled = &spelled;
                let addr = spec.addr.as_str();
                let requests = spec.requests;
                let seed = spec.seed;
                scope.spawn(move || -> Result<ClientTally> {
                    let mut client = Client::connect(addr)?;
                    let mut tally = ClientTally::default();
                    for i in 0..requests {
                        let req_seed = seed ^ ((c * requests + i) as u64).wrapping_mul(0x9E37);
                        let text = spelled(req_seed)?;
                        let sw = Stopwatch::start();
                        match client.query(request_for(&text, req_seed))? {
                            Response::Answers { cached, .. } => {
                                tally.latencies_ms.push(sw.elapsed_secs() * 1000.0);
                                tally.ok += 1;
                                tally.cached += cached as usize;
                            }
                            Response::Error { kind: ErrorKind::Overloaded, .. } => {
                                tally.overloaded += 1;
                            }
                            Response::Error { kind: ErrorKind::DeadlineExceeded, .. } => {
                                tally.deadline += 1;
                            }
                            _ => tally.other_errors += 1,
                        }
                    }
                    Ok(tally)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    let elapsed_secs = wall.elapsed_secs();
    let mut all = ClientTally::default();
    for tally in tallies {
        let tally = tally?;
        all.latencies_ms.extend(tally.latencies_ms);
        all.ok += tally.ok;
        all.cached += tally.cached;
        all.overloaded += tally.overloaded;
        all.deadline += tally.deadline;
        all.other_errors += tally.other_errors;
    }
    all.latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let server = warm.stats()?;
    Ok(LoadReport { clients, requests: spec.requests, elapsed_secs, tally: all, server })
}
