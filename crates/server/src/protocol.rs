//! The wire protocol: versioned, line-delimited JSON.
//!
//! Every request and response is one JSON object on one line. Requests
//! carry `"v": 1` (the protocol version) and `"cmd"`; unknown versions and
//! commands are rejected with a structured `bad_request` error rather than
//! a dropped connection. The full grammar:
//!
//! ```text
//! → {"v":1,"cmd":"query","query":"Q(n) :- r(k, n)","scheme":"klm",
//!    "eps":0.1,"delta":0.25,"timeout_ms":5000,"seed":42}
//! ← {"ok":true,"cached":false,"preprocess_ms":12.5,"scheme_ms":3.1,
//!    "total_samples":18000,"answers":[{"tuple":["Bob"],"frequency":0.5,
//!    "samples":9000}]}
//!
//! → {"v":1,"cmd":"stats"}
//! ← {"ok":true,"stats":{...cache/pool/latency counters...}}
//!
//! → {"v":1,"cmd":"stats","format":"prometheus"}
//! ← {"ok":true,"stats_text":"# TYPE server_requests_total counter\n..."}
//!
//! → {"v":1,"cmd":"trace"}
//! ← {"ok":true,"trace":[...Chrome trace_event objects...]}
//!
//! → {"v":1,"cmd":"ping"}
//! ← {"ok":true,"pong":true,"version":1}
//!
//! → {"v":1,"cmd":"debug","target":"flight"}
//! ← {"ok":true,"flight":[...per-request digests...],"dropped":0}
//!
//! → {"v":1,"cmd":"debug","target":"slowlog"}
//! ← {"ok":true,"slowlog":[...slow/error requests with span trees...]}
//!
//! ← {"ok":false,"error":"overloaded","message":"queue full (depth 64)"}
//! ```
//!
//! Integers ride as JSON strings never — tuples carry ints as numbers and
//! strings as strings, so clients recover typed values without the schema.

use cqa_common::validate::{bounded_str, unit_open};
use cqa_common::{CqaError, Json, Result};
use cqa_core::Scheme;
use cqa_obs::flight::{digest_field, FlightDigest, SlowlogEntry, MAX_REQUEST_ID_BYTES};
use cqa_obs::TraceEvent;
use cqa_storage::Value;

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Parameters of a `query` request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The conjunctive query, datalog syntax.
    pub query: String,
    /// Which approximation scheme to run.
    pub scheme: Scheme,
    /// Relative error ε.
    pub eps: f64,
    /// Uncertainty δ.
    pub delta: f64,
    /// Per-request deadline; `None` uses the server default.
    pub timeout_ms: Option<u64>,
    /// RNG seed; fixed seeds give identical answers regardless of the
    /// server's worker-pool size.
    pub seed: u64,
    /// Client-supplied request id for the flight recorder, 1 to
    /// [`MAX_REQUEST_ID_BYTES`] bytes; `None` lets the server generate
    /// one.
    pub request_id: Option<String>,
    /// Which delivery attempt this is, 0 for the first. Retrying clients
    /// stamp their retries (1, 2, …) so the server can count absorbed
    /// transient faults (`server_retried_requests_total`); 0 is not
    /// serialized, so first attempts look exactly as before.
    pub attempt: u64,
}

impl Default for QueryRequest {
    fn default() -> Self {
        QueryRequest {
            query: String::new(),
            scheme: Scheme::Klm,
            eps: 0.1,
            delta: 0.25,
            timeout_ms: None,
            seed: 42,
            request_id: None,
            attempt: 0,
        }
    }
}

/// How a `stats` response should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsFormat {
    /// The structured JSON snapshot (the default).
    #[default]
    Json,
    /// Prometheus text exposition, for scrape-style collection.
    Prometheus,
}

/// Which flight-recorder dump a `debug` request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DebugTarget {
    /// The per-request digest ring.
    Flight,
    /// The slow/error log with full span trees.
    Slowlog,
}

impl DebugTarget {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            DebugTarget::Flight => "flight",
            DebugTarget::Slowlog => "slowlog",
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run approximate CQA.
    Query(QueryRequest),
    /// Fetch server metrics.
    Stats {
        /// Rendering of the metrics payload.
        format: StatsFormat,
    },
    /// Dump the server's recorded trace events (Chrome `trace_event`
    /// objects); empty unless the server runs with tracing enabled.
    Trace,
    /// Dump the flight recorder (always on, unlike `trace`).
    Debug {
        /// Which recorder structure to dump.
        target: DebugTarget,
    },
    /// Liveness check.
    Ping,
}

impl Request {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let v = match self {
            Request::Query(q) => {
                let mut pairs = vec![
                    ("v", Json::from(PROTOCOL_VERSION)),
                    ("cmd", Json::str("query")),
                    ("query", Json::str(&q.query)),
                    ("scheme", Json::str(q.scheme.name().to_ascii_lowercase())),
                    ("eps", Json::from(q.eps)),
                    ("delta", Json::from(q.delta)),
                    ("seed", Json::from(q.seed)),
                ];
                if let Some(ms) = q.timeout_ms {
                    pairs.push(("timeout_ms", Json::from(ms)));
                }
                if let Some(id) = &q.request_id {
                    pairs.push(("request_id", Json::str(id)));
                }
                if q.attempt > 0 {
                    pairs.push(("attempt", Json::from(q.attempt)));
                }
                Json::obj(pairs)
            }
            Request::Stats { format } => {
                let mut pairs =
                    vec![("v", Json::from(PROTOCOL_VERSION)), ("cmd", Json::str("stats"))];
                if *format == StatsFormat::Prometheus {
                    pairs.push(("format", Json::str("prometheus")));
                }
                Json::obj(pairs)
            }
            Request::Trace => {
                Json::obj([("v", Json::from(PROTOCOL_VERSION)), ("cmd", Json::str("trace"))])
            }
            Request::Debug { target } => Json::obj([
                ("v", Json::from(PROTOCOL_VERSION)),
                ("cmd", Json::str("debug")),
                ("target", Json::str(target.name())),
            ]),
            Request::Ping => {
                Json::obj([("v", Json::from(PROTOCOL_VERSION)), ("cmd", Json::str("ping"))])
            }
        };
        v.to_string_compact()
    }

    /// Parses one protocol line.
    pub fn from_line(line: &str) -> Result<Request> {
        let v = Json::parse(line.trim())?;
        let version = v
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| CqaError::Parse("missing protocol version 'v'".into()))?;
        if version != PROTOCOL_VERSION {
            return Err(CqaError::Parse(format!(
                "unsupported protocol version {version} (this server speaks {PROTOCOL_VERSION})"
            )));
        }
        match v.req_str("cmd")? {
            "query" => {
                let scheme: Scheme = match v.get("scheme") {
                    Some(s) => s
                        .as_str()
                        .ok_or_else(|| CqaError::Parse("non-string 'scheme'".into()))?
                        .parse()
                        .map_err(|e: CqaError| CqaError::Parse(e.to_string()))?,
                    None => Scheme::Klm,
                };
                // A nested fn (not a closure) so cqa-lint's call graph can
                // see through the call.
                fn num(v: &Json, key: &str, default: f64) -> Result<f64> {
                    match v.get(key) {
                        Some(n) => n
                            .as_f64()
                            .ok_or_else(|| CqaError::Parse(format!("non-numeric '{key}'"))),
                        None => Ok(default),
                    }
                }
                // Registered validators (cqa_common::validate): the
                // trust boundary the wire-input-taint lint checks against.
                let eps = unit_open("eps", num(&v, "eps", 0.1)?)?;
                let delta = unit_open("delta", num(&v, "delta", 0.25)?)?;
                let timeout_ms = match v.get("timeout_ms") {
                    Some(t) => Some(
                        t.as_u64()
                            .ok_or_else(|| CqaError::Parse("non-integer 'timeout_ms'".into()))?,
                    ),
                    None => None,
                };
                let seed = match v.get("seed") {
                    Some(s) => {
                        s.as_u64().ok_or_else(|| CqaError::Parse("non-integer 'seed'".into()))?
                    }
                    None => 42,
                };
                let request_id = match v.get("request_id") {
                    Some(r) => {
                        let id = r
                            .as_str()
                            .ok_or_else(|| CqaError::Parse("non-string 'request_id'".into()))?;
                        Some(bounded_str("request_id", id, MAX_REQUEST_ID_BYTES)?.to_owned())
                    }
                    None => None,
                };
                // Lenient: requests from clients predating the retry layer
                // simply have no 'attempt' and parse as a first attempt.
                let attempt = v.get("attempt").and_then(Json::as_u64).unwrap_or(0);
                Ok(Request::Query(QueryRequest {
                    query: v.req_str("query")?.to_owned(),
                    scheme,
                    eps,
                    delta,
                    timeout_ms,
                    seed,
                    request_id,
                    attempt,
                }))
            }
            "stats" => {
                let format = match v.get("format") {
                    None => StatsFormat::Json,
                    Some(f) => match f.as_str() {
                        Some("json") => StatsFormat::Json,
                        Some("prometheus") => StatsFormat::Prometheus,
                        _ => {
                            return Err(CqaError::Parse(format!(
                                "unknown stats format {f:?} (expected json or prometheus)"
                            )))
                        }
                    },
                };
                Ok(Request::Stats { format })
            }
            "trace" => Ok(Request::Trace),
            "debug" => match v.req_str("target")? {
                "flight" => Ok(Request::Debug { target: DebugTarget::Flight }),
                "slowlog" => Ok(Request::Debug { target: DebugTarget::Slowlog }),
                other => Err(CqaError::Parse(format!(
                    "unknown debug target '{other}' (expected flight or slowlog)"
                ))),
            },
            "ping" => Ok(Request::Ping),
            other => Err(CqaError::Parse(format!("unknown command '{other}'"))),
        }
    }
}

/// Structured error categories a client can branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The admission queue is full; retry later.
    Overloaded,
    /// The request's deadline expired before the answer was ready.
    DeadlineExceeded,
    /// The request was malformed (bad JSON, unknown query relation, …).
    BadRequest,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Internal => "internal",
        }
    }

    /// Whether a client may safely retry the same request as-is. Requests
    /// are stateless, so everything transient is retryable: `overloaded`
    /// (the queue will drain) and `internal` (the fault is not the
    /// request's doing). `bad_request` will fail identically forever, and
    /// `deadline_exceeded` means the budget is spent — retrying under the
    /// same deadline would just lose again.
    pub fn retryable(self) -> bool {
        match self {
            ErrorKind::Overloaded | ErrorKind::Internal => true,
            ErrorKind::DeadlineExceeded | ErrorKind::BadRequest => false,
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<ErrorKind> {
        match name {
            "overloaded" => Some(ErrorKind::Overloaded),
            "deadline_exceeded" => Some(ErrorKind::DeadlineExceeded),
            "bad_request" => Some(ErrorKind::BadRequest),
            "internal" => Some(ErrorKind::Internal),
            _ => None,
        }
    }
}

/// One estimated answer on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAnswer {
    /// The candidate tuple, as typed values.
    pub tuple: Vec<Value>,
    /// The approximated relative frequency.
    pub frequency: f64,
    /// Samples spent on this tuple.
    pub samples: u64,
}

/// One flight-recorder digest on the wire. Mirrors
/// [`cqa_obs::FlightDigest`] with owned strings (a parsed response cannot
/// reuse the recorder's interned names) and the query fingerprint as a
/// hex string (`Json::Num` is an `f64`; 64-bit fingerprints would lose
/// precision past 2^53).
#[derive(Debug, Clone, PartialEq)]
pub struct WireDigest {
    /// Client-supplied or server-generated request id.
    pub request_id: String,
    /// Canonical query fingerprint, 16 hex digits (`0000…0` when the
    /// query never parsed).
    pub query_fp: String,
    /// Scheme display name.
    pub scheme: String,
    /// Did the synopsis come from the cache?
    pub cache_hit: bool,
    /// Structured error kind name for failed requests.
    pub error: Option<String>,
    /// Time queued before a worker picked the request up, microseconds.
    pub queue_wait_us: u64,
    /// Samples the scheme drew.
    pub samples: u64,
    /// Running sample variance of the estimator at termination.
    pub variance: f64,
    /// One-standard-error CI half-width of the estimate at termination.
    pub ci_half_width: f64,
    /// Synopsis-build time, microseconds (0 on cache hits).
    pub preprocess_us: u64,
    /// Sampling time, microseconds.
    pub scheme_us: u64,
    /// Admission-to-reply wall time, microseconds.
    pub total_us: u64,
    /// Completion timestamp, microseconds since the trace epoch.
    pub ts_us: u64,
}

impl WireDigest {
    /// Converts a recorder digest to its wire form.
    pub fn from_digest(d: &FlightDigest) -> WireDigest {
        WireDigest {
            request_id: d.request_id.clone(),
            query_fp: format!("{:016x}", d.query_fingerprint),
            scheme: d.scheme.to_owned(),
            cache_hit: d.cache_hit,
            error: d.error.map(str::to_owned),
            queue_wait_us: d.queue_wait_micros,
            samples: d.samples,
            variance: d.variance,
            ci_half_width: d.ci_half_width,
            preprocess_us: d.preprocess_micros,
            scheme_us: d.scheme_micros,
            total_us: d.total_micros,
            ts_us: d.ts_micros,
        }
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![
            digest_field("request_id", Json::str(&self.request_id)),
            digest_field("query_fp", Json::str(&self.query_fp)),
            digest_field("scheme", Json::str(&self.scheme)),
            digest_field("cache_hit", Json::from(self.cache_hit)),
            digest_field("queue_wait_us", Json::from(self.queue_wait_us)),
            digest_field("samples", Json::from(self.samples)),
            digest_field("variance", Json::from(self.variance)),
            digest_field("ci_half_width", Json::from(self.ci_half_width)),
            digest_field("preprocess_us", Json::from(self.preprocess_us)),
            digest_field("scheme_us", Json::from(self.scheme_us)),
            digest_field("total_us", Json::from(self.total_us)),
            digest_field("ts_us", Json::from(self.ts_us)),
        ];
        if let Some(e) = &self.error {
            pairs.push(digest_field("error", Json::str(e)));
        }
        Json::obj(pairs)
    }

    fn from_json(v: &Json) -> Result<WireDigest> {
        Ok(WireDigest {
            request_id: v.req_str("request_id")?.to_owned(),
            query_fp: v.req_str("query_fp")?.to_owned(),
            scheme: v.req_str("scheme")?.to_owned(),
            cache_hit: v.get("cache_hit").and_then(Json::as_bool).unwrap_or(false),
            error: v.get("error").and_then(Json::as_str).map(str::to_owned),
            queue_wait_us: wire_u64(v, "queue_wait_us")?,
            samples: wire_u64(v, "samples")?,
            variance: v.req_f64("variance")?,
            ci_half_width: v.req_f64("ci_half_width")?,
            preprocess_us: wire_u64(v, "preprocess_us")?,
            scheme_us: wire_u64(v, "scheme_us")?,
            total_us: wire_u64(v, "total_us")?,
            ts_us: wire_u64(v, "ts_us")?,
        })
    }
}

/// One slow/error-log entry on the wire: identity plus the captured span
/// tree. Spans ride as rendered JSON objects (name, depth, timings,
/// args); clients inspect them rather than reconstructing trace state.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSlowlogEntry {
    /// The request's id.
    pub request_id: String,
    /// Structured error kind name, when the request failed.
    pub error: Option<String>,
    /// Admission-to-reply wall time, microseconds.
    pub total_us: u64,
    /// Completion timestamp, microseconds since the trace epoch.
    pub ts_us: u64,
    /// The span tree as a JSON array, timestamp order; `depth`
    /// reconstructs nesting.
    pub spans: Json,
}

/// Renders one captured span for the slow/error log.
fn span_event_json(ev: &TraceEvent) -> Json {
    Json::obj([
        digest_field("name", Json::str(ev.name)),
        digest_field("depth", Json::from(u64::from(ev.depth))),
        digest_field("ts_us", Json::from(ev.ts_micros)),
        digest_field("dur_us", Json::from(ev.dur_micros)),
        digest_field("self_us", Json::from(ev.self_micros)),
        digest_field("a0", Json::from(ev.a0)),
        digest_field("a1", Json::from(ev.a1)),
    ])
}

impl WireSlowlogEntry {
    /// Converts a recorder entry to its wire form.
    pub fn from_entry(e: &SlowlogEntry) -> WireSlowlogEntry {
        WireSlowlogEntry {
            request_id: e.request_id.clone(),
            error: e.error.map(str::to_owned),
            total_us: e.total_micros,
            ts_us: e.ts_micros,
            spans: Json::Arr(e.spans.iter().map(span_event_json).collect()),
        }
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![
            digest_field("request_id", Json::str(&self.request_id)),
            digest_field("total_us", Json::from(self.total_us)),
            digest_field("ts_us", Json::from(self.ts_us)),
            digest_field("spans", self.spans.clone()),
        ];
        if let Some(e) = &self.error {
            pairs.push(digest_field("error", Json::str(e)));
        }
        Json::obj(pairs)
    }

    fn from_json(v: &Json) -> Result<WireSlowlogEntry> {
        Ok(WireSlowlogEntry {
            request_id: v.req_str("request_id")?.to_owned(),
            error: v.get("error").and_then(Json::as_str).map(str::to_owned),
            total_us: wire_u64(v, "total_us")?,
            ts_us: wire_u64(v, "ts_us")?,
            spans: v.get("spans").cloned().unwrap_or(Json::Arr(Vec::new())),
        })
    }
}

/// A required integer field of a digest or slow-log object. A nested fn
/// (not a closure) so cqa-lint's call graph can see through the call.
fn wire_u64(v: &Json, key: &str) -> Result<u64> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| CqaError::Parse(format!("missing integer field '{key}'")))
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A successful `query`.
    Answers {
        /// Whether the synopsis came from the cache.
        cached: bool,
        /// Preprocessing wall milliseconds (0 on a cache hit).
        preprocess_ms: f64,
        /// Approximation wall milliseconds.
        scheme_ms: f64,
        /// Total samples across all tuples.
        total_samples: u64,
        /// The estimated answers, ordered by tuple.
        answers: Vec<WireAnswer>,
    },
    /// A successful `stats` (an opaque metrics object).
    Stats(Json),
    /// A successful `stats` in a text rendering (Prometheus exposition).
    StatsText(String),
    /// A successful `trace`: an array of Chrome `trace_event` objects.
    Trace(Json),
    /// A successful `debug flight`: the digest ring's contents.
    Flight {
        /// Recorded digests, completion-timestamp order.
        digests: Vec<WireDigest>,
        /// Digests lost to ring wrap.
        dropped: u64,
    },
    /// A successful `debug slowlog`: the slow/error log, oldest first.
    Slowlog(Vec<WireSlowlogEntry>),
    /// A successful `ping`.
    Pong {
        /// The server's protocol version.
        version: u64,
    },
    /// A structured failure.
    Error {
        /// The category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(i) => Json::Num(*i as f64),
        Value::Str(s) => Json::Str(s.clone()),
    }
}

fn json_to_value(j: &Json) -> Result<Value> {
    match j {
        Json::Num(n) if n.fract() == 0.0 => Ok(Value::Int(*n as i64)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        other => Err(CqaError::Parse(format!("bad tuple cell {other:?}"))),
    }
}

impl Response {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let v = match self {
            Response::Answers { cached, preprocess_ms, scheme_ms, total_samples, answers } => {
                let rows: Vec<Json> = answers
                    .iter()
                    .map(|a| {
                        Json::obj([
                            ("tuple", Json::Arr(a.tuple.iter().map(value_to_json).collect())),
                            ("frequency", Json::from(a.frequency)),
                            ("samples", Json::from(a.samples)),
                        ])
                    })
                    .collect();
                Json::obj([
                    ("ok", Json::from(true)),
                    ("cached", Json::from(*cached)),
                    ("preprocess_ms", Json::from(*preprocess_ms)),
                    ("scheme_ms", Json::from(*scheme_ms)),
                    ("total_samples", Json::from(*total_samples)),
                    ("answers", Json::Arr(rows)),
                ])
            }
            Response::Stats(stats) => {
                Json::obj([("ok", Json::from(true)), ("stats", stats.clone())])
            }
            Response::StatsText(text) => {
                Json::obj([("ok", Json::from(true)), ("stats_text", Json::str(text.clone()))])
            }
            Response::Trace(events) => {
                Json::obj([("ok", Json::from(true)), ("trace", events.clone())])
            }
            Response::Flight { digests, dropped } => Json::obj([
                ("ok", Json::from(true)),
                ("flight", Json::Arr(digests.iter().map(WireDigest::to_json).collect())),
                ("dropped", Json::from(*dropped)),
            ]),
            Response::Slowlog(entries) => Json::obj([
                ("ok", Json::from(true)),
                ("slowlog", Json::Arr(entries.iter().map(WireSlowlogEntry::to_json).collect())),
            ]),
            Response::Pong { version } => Json::obj([
                ("ok", Json::from(true)),
                ("pong", Json::from(true)),
                ("version", Json::from(*version)),
            ]),
            Response::Error { kind, message } => Json::obj([
                ("ok", Json::from(false)),
                ("error", Json::str(kind.name())),
                ("retryable", Json::from(kind.retryable())),
                ("message", Json::str(message.clone())),
            ]),
        };
        v.to_string_compact()
    }

    /// Parses one protocol line.
    pub fn from_line(line: &str) -> Result<Response> {
        let v = Json::parse(line.trim())?;
        let ok = v
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| CqaError::Parse("response missing 'ok'".into()))?;
        if !ok {
            let kind = ErrorKind::from_name(v.req_str("error")?)
                .ok_or_else(|| CqaError::Parse("unknown error kind".into()))?;
            return Ok(Response::Error {
                kind,
                message: v.req_str("message").unwrap_or("").to_owned(),
            });
        }
        if v.get("pong").is_some() {
            let version = v
                .get("version")
                .and_then(Json::as_u64)
                .ok_or_else(|| CqaError::Parse("pong missing 'version'".into()))?;
            return Ok(Response::Pong { version });
        }
        if let Some(text) = v.get("stats_text") {
            let text =
                text.as_str().ok_or_else(|| CqaError::Parse("non-string 'stats_text'".into()))?;
            return Ok(Response::StatsText(text.to_owned()));
        }
        if let Some(stats) = v.get("stats") {
            return Ok(Response::Stats(stats.clone()));
        }
        if let Some(events) = v.get("trace") {
            return Ok(Response::Trace(events.clone()));
        }
        if let Some(rows) = v.get("flight") {
            let rows = rows.as_arr().ok_or_else(|| CqaError::Parse("non-array 'flight'".into()))?;
            let digests = rows.iter().map(WireDigest::from_json).collect::<Result<Vec<_>>>()?;
            let dropped = v.get("dropped").and_then(Json::as_u64).unwrap_or(0);
            return Ok(Response::Flight { digests, dropped });
        }
        if let Some(rows) = v.get("slowlog") {
            let rows =
                rows.as_arr().ok_or_else(|| CqaError::Parse("non-array 'slowlog'".into()))?;
            let entries =
                rows.iter().map(WireSlowlogEntry::from_json).collect::<Result<Vec<_>>>()?;
            return Ok(Response::Slowlog(entries));
        }
        let rows = v
            .get("answers")
            .and_then(Json::as_arr)
            .ok_or_else(|| CqaError::Parse("response missing 'answers'".into()))?;
        let mut answers = Vec::with_capacity(rows.len());
        for row in rows {
            let cells = row
                .get("tuple")
                .and_then(Json::as_arr)
                .ok_or_else(|| CqaError::Parse("answer missing 'tuple'".into()))?;
            let tuple = cells.iter().map(json_to_value).collect::<Result<Vec<_>>>()?;
            answers.push(WireAnswer {
                tuple,
                frequency: row.req_f64("frequency")?,
                samples: row
                    .get("samples")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| CqaError::Parse("answer missing 'samples'".into()))?,
            });
        }
        Ok(Response::Answers {
            cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
            preprocess_ms: v.req_f64("preprocess_ms")?,
            scheme_ms: v.req_f64("scheme_ms")?,
            total_samples: v
                .get("total_samples")
                .and_then(Json::as_u64)
                .ok_or_else(|| CqaError::Parse("response missing 'total_samples'".into()))?,
            answers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_request_roundtrips() {
        let req = Request::Query(QueryRequest {
            query: "Q(n) :- employee(x, n, d)".into(),
            scheme: Scheme::Natural,
            eps: 0.2,
            delta: 0.1,
            timeout_ms: Some(750),
            seed: 7,
            request_id: Some("client-req-9".into()),
            attempt: 2,
        });
        let line = req.to_line();
        assert!(line.contains("\"v\":1"), "{line}");
        assert!(line.contains("\"request_id\":\"client-req-9\""), "{line}");
        assert!(line.contains("\"attempt\":2"), "{line}");
        assert_eq!(Request::from_line(&line).unwrap(), req);
    }

    #[test]
    fn attempt_is_optional_and_lenient() {
        // First attempts (0) are not serialized — the wire line looks
        // exactly as it did before the retry layer existed.
        let first =
            Request::Query(QueryRequest { query: "Q() :- r(x)".into(), ..Default::default() });
        assert!(!first.to_line().contains("attempt"), "{}", first.to_line());
        // And a line without the field parses as a first attempt.
        match Request::from_line(r#"{"v":1,"cmd":"query","query":"Q() :- r(x)"}"#).unwrap() {
            Request::Query(q) => assert_eq!(q.attempt, 0),
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn request_id_length_is_validated() {
        let ok = format!(
            r#"{{"v":1,"cmd":"query","query":"Q() :- r(x)","request_id":"{}"}}"#,
            "a".repeat(MAX_REQUEST_ID_BYTES)
        );
        assert!(Request::from_line(&ok).is_ok());
        for bad in ["".to_owned(), "a".repeat(MAX_REQUEST_ID_BYTES + 1)] {
            let line =
                format!(r#"{{"v":1,"cmd":"query","query":"Q() :- r(x)","request_id":"{bad}"}}"#);
            assert!(Request::from_line(&line).is_err(), "accepted id of {} bytes", bad.len());
        }
    }

    #[test]
    fn debug_requests_roundtrip() {
        for target in [DebugTarget::Flight, DebugTarget::Slowlog] {
            let req = Request::Debug { target };
            let line = req.to_line();
            assert!(line.contains(target.name()), "{line}");
            assert_eq!(Request::from_line(&line).unwrap(), req);
        }
        assert!(Request::from_line(r#"{"v":1,"cmd":"debug","target":"heap"}"#).is_err());
        assert!(Request::from_line(r#"{"v":1,"cmd":"debug"}"#).is_err());
    }

    #[test]
    fn request_defaults_apply() {
        let req = Request::from_line(r#"{"v":1,"cmd":"query","query":"Q() :- r(x)"}"#).unwrap();
        match req {
            Request::Query(q) => {
                assert_eq!(q.scheme, Scheme::Klm);
                assert_eq!(q.eps, 0.1);
                assert_eq!(q.delta, 0.25);
                assert_eq!(q.timeout_ms, None);
                assert_eq!(q.seed, 42);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn stats_ping_and_trace_roundtrip() {
        for req in [
            Request::Stats { format: StatsFormat::Json },
            Request::Stats { format: StatsFormat::Prometheus },
            Request::Trace,
            Request::Ping,
        ] {
            assert_eq!(Request::from_line(&req.to_line()).unwrap(), req);
        }
        // A format-less stats request defaults to JSON.
        assert_eq!(
            Request::from_line(r#"{"v":1,"cmd":"stats"}"#).unwrap(),
            Request::Stats { format: StatsFormat::Json }
        );
        assert!(Request::from_line(r#"{"v":1,"cmd":"stats","format":"xml"}"#).is_err());
    }

    #[test]
    fn bad_requests_are_rejected() {
        for line in [
            "",
            "not json",
            r#"{"cmd":"query"}"#,            // no version
            r#"{"v":2,"cmd":"ping"}"#,       // wrong version
            r#"{"v":1,"cmd":"frobnicate"}"#, // unknown command
            r#"{"v":1,"cmd":"query"}"#,      // no query text
            r#"{"v":1,"cmd":"query","query":"Q() :- r(x)","eps":7}"#, // eps out of range
            r#"{"v":1,"cmd":"query","query":"Q() :- r(x)","scheme":"fast"}"#,
            r#"{"v":1,"cmd":"query","query":"Q() :- r(x)","timeout_ms":-5}"#,
        ] {
            assert!(Request::from_line(line).is_err(), "accepted {line:?}");
        }
    }

    #[test]
    fn answers_response_roundtrips() {
        let resp = Response::Answers {
            cached: true,
            preprocess_ms: 0.0,
            scheme_ms: 12.25,
            total_samples: 4096,
            answers: vec![
                WireAnswer {
                    tuple: vec![Value::Int(3), Value::str("Bob")],
                    frequency: 0.5,
                    samples: 2048,
                },
                WireAnswer { tuple: vec![], frequency: 1.0, samples: 2048 },
            ],
        };
        assert_eq!(Response::from_line(&resp.to_line()).unwrap(), resp);
    }

    #[test]
    fn error_response_roundtrips() {
        for kind in [
            ErrorKind::Overloaded,
            ErrorKind::DeadlineExceeded,
            ErrorKind::BadRequest,
            ErrorKind::Internal,
        ] {
            let resp = Response::Error { kind, message: "detail".into() };
            let line = resp.to_line();
            assert!(line.contains(kind.name()));
            assert_eq!(Response::from_line(&line).unwrap(), resp);
        }
    }

    /// The `retryable` flag rides on every error envelope and is derived
    /// from the kind, so clients can branch without a kind table — and
    /// old payloads without the flag still parse (it is never required).
    #[test]
    fn error_envelope_carries_retryable() {
        for (kind, expect) in [
            (ErrorKind::Overloaded, true),
            (ErrorKind::Internal, true),
            (ErrorKind::DeadlineExceeded, false),
            (ErrorKind::BadRequest, false),
        ] {
            assert_eq!(kind.retryable(), expect, "{}", kind.name());
            let line = Response::Error { kind, message: "m".into() }.to_line();
            assert!(line.contains(&format!("\"retryable\":{expect}")), "{line}");
        }
        let old = r#"{"ok":false,"error":"overloaded","message":"queue full"}"#;
        match Response::from_line(old).unwrap() {
            Response::Error { kind, .. } => assert!(kind.retryable()),
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn pong_and_stats_roundtrip() {
        let pong = Response::Pong { version: PROTOCOL_VERSION };
        assert_eq!(Response::from_line(&pong.to_line()).unwrap(), pong);
        let stats = Response::Stats(Json::obj([("requests", Json::from(3u64))]));
        assert_eq!(Response::from_line(&stats.to_line()).unwrap(), stats);
    }

    #[test]
    fn stats_text_and_trace_roundtrip() {
        let text = Response::StatsText("# TYPE x counter\nx 3\n".to_owned());
        assert_eq!(Response::from_line(&text.to_line()).unwrap(), text);
        let trace = Response::Trace(Json::Arr(vec![Json::obj([
            ("name", Json::str("synopsis/build")),
            ("ph", Json::str("X")),
        ])]));
        assert_eq!(Response::from_line(&trace.to_line()).unwrap(), trace);
    }

    #[test]
    fn flight_response_roundtrips() {
        let ok = WireDigest {
            request_id: "client-abc".into(),
            query_fp: format!("{:016x}", u64::MAX - 3), // past 2^53: must survive
            scheme: "KLM".into(),
            cache_hit: true,
            error: None,
            queue_wait_us: 41,
            samples: 18_000,
            variance: 0.25,
            ci_half_width: 0.003,
            preprocess_us: 0,
            scheme_us: 1200,
            total_us: 1300,
            ts_us: 99,
        };
        let failed = WireDigest {
            request_id: "srv-0000000000000001".into(),
            cache_hit: false,
            error: Some("deadline_exceeded".into()),
            ..ok.clone()
        };
        let resp = Response::Flight { digests: vec![ok, failed], dropped: 7 };
        assert_eq!(Response::from_line(&resp.to_line()).unwrap(), resp);
    }

    #[test]
    fn slowlog_response_roundtrips() {
        let entry = WireSlowlogEntry::from_entry(&SlowlogEntry {
            request_id: "slow-1".into(),
            error: Some("internal"),
            total_micros: 2_000_000,
            ts_micros: 5,
            spans: vec![TraceEvent {
                name: "server/request",
                kind: cqa_obs::EventKind::Span,
                tid: 1,
                depth: 0,
                ts_micros: 1,
                dur_micros: 2_000_000,
                self_micros: 1_500_000,
                a0: 42,
                a1: 0,
            }],
        });
        let resp = Response::Slowlog(vec![entry]);
        let line = resp.to_line();
        assert!(line.contains("\"spans\":"), "{line}");
        assert!(line.contains("server/request"), "{line}");
        assert_eq!(Response::from_line(&line).unwrap(), resp);
        // An empty slowlog still parses as a Slowlog, not as bad answers.
        let empty = Response::Slowlog(Vec::new());
        assert_eq!(Response::from_line(&empty.to_line()).unwrap(), empty);
    }

    #[test]
    fn tuples_preserve_types() {
        let resp = Response::Answers {
            cached: false,
            preprocess_ms: 1.0,
            scheme_ms: 1.0,
            total_samples: 1,
            answers: vec![WireAnswer {
                tuple: vec![Value::Int(-42), Value::str("42")],
                frequency: 0.25,
                samples: 1,
            }],
        };
        match Response::from_line(&resp.to_line()).unwrap() {
            Response::Answers { answers, .. } => {
                assert_eq!(answers[0].tuple[0], Value::Int(-42));
                assert_eq!(answers[0].tuple[1], Value::str("42"));
            }
            other => panic!("wrong response {other:?}"),
        }
    }
}
