//! The sharded synopsis cache.
//!
//! Synopsis construction is the expensive phase of `ApxCQA` (Fig. 3:
//! preprocessing dominates end-to-end latency), and a synopsis depends only
//! on the database, its constraints, and the query *up to α-equivalence* —
//! not on the scheme, `(ε, δ)`, the query's spelling, or its atom order.
//! The server therefore caches built [`SynopsisSet`]s keyed by
//! `(database fingerprint, constraint-set fingerprint, canonical query
//! fingerprint)`, so a repeat query under any scheme — or the same query
//! re-spelled with renamed variables and shuffled atoms — goes straight to
//! `apx_cqa_on_synopses`. Hits that only canonicalization made possible
//! (the literal text differs from the one that built the entry) are counted
//! separately as *canonical rekeys*.
//!
//! The map is split into shards, each behind its own `parking_lot::Mutex`,
//! so concurrent workers rarely contend. Each shard evicts its
//! least-recently-used entry when it reaches capacity; values are
//! `Arc<SynopsisSet>`, so an evicted synopsis stays alive while a worker
//! still holds it.

use cqa_common::{fnv1a64, fnv1a64_parts};
use cqa_query::ConjunctiveQuery;
use cqa_storage::{dump_to_string, schema_to_ddl, Database};
use cqa_synopsis::SynopsisSet;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cache key: the database and constraint fingerprints plus the
/// canonical query fingerprint (see [`cqa_query::canonical`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a of the canonical database dump.
    pub db_fingerprint: u64,
    /// FNV-1a of the canonical DDL (which carries the key constraints).
    pub constraint_fingerprint: u64,
    /// Fingerprint of the query's canonical form — shared by every
    /// spelling in its α-equivalence class.
    pub query_fingerprint: u64,
}

impl CacheKey {
    /// Builds a key for a parsed query against a database. The database
    /// fingerprints hash the *canonical* dump/DDL text, so two structurally
    /// identical databases share cache entries even if loaded from
    /// different files; the query fingerprint hashes the canonical form, so
    /// α-equivalent spellings share entries too.
    pub fn new(db: &Database, query: &ConjunctiveQuery) -> CacheKey {
        CacheKey {
            db_fingerprint: fnv1a64(dump_to_string(db).as_bytes()),
            constraint_fingerprint: fnv1a64(schema_to_ddl(db.schema()).as_bytes()),
            query_fingerprint: query.canonical_fingerprint(),
        }
    }

    /// Fingerprint of a query's literal wire text, used to tell plain
    /// repeat hits from hits canonicalization earned ([`SynopsisCache::get`]).
    pub fn literal_fingerprint(query_text: &str) -> u64 {
        fnv1a64(query_text.as_bytes())
    }

    fn shard_hash(&self) -> u64 {
        fnv1a64_parts([
            self.db_fingerprint.to_le_bytes().as_slice(),
            self.constraint_fingerprint.to_le_bytes().as_slice(),
            self.query_fingerprint.to_le_bytes().as_slice(),
        ])
    }
}

struct Entry {
    value: Arc<SynopsisSet>,
    /// Use stamp from the owning shard's clock; smallest = LRU victim.
    stamp: u64,
    /// [`CacheKey::literal_fingerprint`] of the query text that built this
    /// entry; a hit under a different literal text is a canonical rekey.
    literal_fp: u64,
}

struct Shard {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
}

/// Point-in-time counters, reported by the `stats` protocol command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Hits whose literal query text differed from the text that built the
    /// entry — hits only canonicalization made possible.
    pub canonical_rekeys: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Maximum resident entries across all shards.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over lookups, or 0 when the cache is untouched.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded LRU map from [`CacheKey`] to `Arc<SynopsisSet>`.
pub struct SynopsisCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    canonical_rekeys: AtomicU64,
    evictions: AtomicU64,
}

/// Default shard count; a small power of two well above typical worker
/// counts, so two workers rarely hash to the same lock.
pub const DEFAULT_SHARDS: usize = 8;

impl SynopsisCache {
    /// A cache holding at most `capacity` synopsis sets across `shards`
    /// shards. Capacity is rounded up to a multiple of the shard count
    /// (each shard gets an equal slice, and a shard never exceeds its own
    /// slice even if others sit empty).
    pub fn new(capacity: usize, shards: usize) -> SynopsisCache {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        SynopsisCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), clock: 0 }))
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            canonical_rekeys: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache with the default shard count.
    pub fn with_capacity(capacity: usize) -> SynopsisCache {
        SynopsisCache::new(capacity, DEFAULT_SHARDS)
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        // cqa-lint: allow(no-panic-in-request-path): the index is shard_hash % shards.len(), always in bounds, and shards is non-empty by construction
        &self.shards[(key.shard_hash() % self.shards.len() as u64) as usize]
    }

    /// Looks up a synopsis, refreshing its LRU stamp on a hit.
    ///
    /// `literal_fp` is [`CacheKey::literal_fingerprint`] of the request's
    /// wire text; a hit whose entry was built under a *different* literal
    /// text is counted as a canonical rekey.
    pub fn get(&self, key: &CacheKey, literal_fp: u64) -> Option<Arc<SynopsisSet>> {
        // Chaos: a failed shard-lock acquisition or a dropped lookup both
        // degrade to a miss — the caller rebuilds the synopsis and still
        // answers correctly, the cache just doesn't help.
        if cqa_chaos::fault_point!("cache/shard_lock").is_some()
            || cqa_chaos::fault_point!("cache/lookup").is_some()
        {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard(key).lock();
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                if entry.literal_fp != literal_fp {
                    self.canonical_rekeys.fetch_add(1, Ordering::Relaxed);
                }
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a synopsis built for the query text fingerprinted by
    /// `literal_fp`, evicting the shard's LRU entry if it is full. Returns
    /// the evicted value, mostly for tests.
    pub fn insert(
        &self,
        key: CacheKey,
        literal_fp: u64,
        value: Arc<SynopsisSet>,
    ) -> Option<Arc<SynopsisSet>> {
        // Chaos: a failed insert skips caching — the value is still
        // returned to the requester, later requests rebuild it.
        if cqa_chaos::fault_point!("cache/insert").is_some() {
            return None;
        }
        let mut shard = self.shard(&key).lock();
        shard.clock += 1;
        let stamp = shard.clock;
        let mut evicted = None;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            // Linear scan for the LRU victim: per-shard capacity is small
            // (a handful of synopsis sets), so a scan beats the bookkeeping
            // of an intrusive list.
            if let Some(victim) = shard.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k) {
                evicted = shard.map.remove(&victim).map(|e| e.value);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(key, Entry { value, stamp, literal_fp });
        evicted
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            canonical_rekeys: self.canonical_rekeys.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().map.len()).sum(),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.per_shard_capacity * self.shards.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A key whose canonical fingerprint is the literal text's fingerprint
    /// — convenient for tests that only exercise LRU mechanics.
    fn key(q: &str) -> CacheKey {
        CacheKey {
            db_fingerprint: 1,
            constraint_fingerprint: 2,
            query_fingerprint: CacheKey::literal_fingerprint(q),
        }
    }

    fn lit(q: &str) -> u64 {
        CacheKey::literal_fingerprint(q)
    }

    fn empty_set() -> Arc<SynopsisSet> {
        Arc::new(SynopsisSet {
            entries: vec![],
            hom_size: 0,
            total_homs: 0,
            build_time: Duration::ZERO,
        })
    }

    #[test]
    fn get_miss_then_hit() {
        let cache = SynopsisCache::with_capacity(4);
        assert!(cache.get(&key("Q1"), lit("Q1")).is_none());
        cache.insert(key("Q1"), lit("Q1"), empty_set());
        assert!(cache.get(&key("Q1"), lit("Q1")).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.canonical_rekeys, 0);
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn hit_under_different_literal_text_counts_as_rekey() {
        let cache = SynopsisCache::with_capacity(4);
        // Two spellings of the same canonical query share the key but have
        // distinct literal fingerprints.
        cache.insert(key("Q"), lit("Q(x) :- r(x, y)"), empty_set());
        assert!(cache.get(&key("Q"), lit("Q(a) :- r(a, b)")).is_some());
        assert!(cache.get(&key("Q"), lit("Q(x) :- r(x, y)")).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.canonical_rekeys, 1, "only the re-spelled lookup is a rekey");
    }

    #[test]
    fn single_shard_evicts_lru() {
        let cache = SynopsisCache::new(2, 1);
        cache.insert(key("a"), lit("a"), empty_set());
        cache.insert(key("b"), lit("b"), empty_set());
        assert!(cache.get(&key("a"), lit("a")).is_some()); // refresh "a": "b" is now LRU
        cache.insert(key("c"), lit("c"), empty_set());
        assert!(cache.get(&key("a"), lit("a")).is_some());
        assert!(cache.get(&key("b"), lit("b")).is_none(), "LRU entry should be evicted");
        assert!(cache.get(&key("c"), lit("c")).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let cache = SynopsisCache::new(1, 1);
        cache.insert(key("a"), lit("a"), empty_set());
        assert!(cache.insert(key("a"), lit("a"), empty_set()).is_none());
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn distinct_fingerprints_are_distinct_keys() {
        let cache = SynopsisCache::with_capacity(8);
        cache.insert(key("Q"), lit("Q"), empty_set());
        let other_db = CacheKey { db_fingerprint: 99, ..key("Q") };
        assert!(cache.get(&other_db, lit("Q")).is_none());
        let other_sigma = CacheKey { constraint_fingerprint: 99, ..key("Q") };
        assert!(cache.get(&other_sigma, lit("Q")).is_none());
    }

    #[test]
    fn concurrent_access_keeps_counts_consistent() {
        let cache = Arc::new(SynopsisCache::with_capacity(64));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..50 {
                        let q = format!("Q{}", (t * 50 + i) % 20);
                        let k = key(&q);
                        if cache.get(&k, lit(&q)).is_none() {
                            cache.insert(k, lit(&q), empty_set());
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 200);
        assert_eq!(stats.canonical_rekeys, 0);
        assert!(stats.entries <= 20);
    }
}
