//! The sharded synopsis cache.
//!
//! Synopsis construction is the expensive phase of `ApxCQA` (Fig. 3:
//! preprocessing dominates end-to-end latency), and a synopsis depends only
//! on the database, its constraints, and the query — not on the scheme or
//! `(ε, δ)`. The server therefore caches built [`SynopsisSet`]s keyed by
//! `(database fingerprint, constraint-set fingerprint, query text)`, so a
//! repeat query under any scheme goes straight to
//! `apx_cqa_on_synopses`.
//!
//! The map is split into shards, each behind its own `parking_lot::Mutex`,
//! so concurrent workers rarely contend. Each shard evicts its
//! least-recently-used entry when it reaches capacity; values are
//! `Arc<SynopsisSet>`, so an evicted synopsis stays alive while a worker
//! still holds it.

use cqa_common::{fnv1a64, fnv1a64_parts};
use cqa_storage::{dump_to_string, schema_to_ddl, Database};
use cqa_synopsis::SynopsisSet;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cache key: both fingerprints plus the literal query text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a of the canonical database dump.
    pub db_fingerprint: u64,
    /// FNV-1a of the canonical DDL (which carries the key constraints).
    pub constraint_fingerprint: u64,
    /// The query, verbatim.
    pub query: String,
}

impl CacheKey {
    /// Builds a key for a query against a database. The fingerprints hash
    /// the *canonical* dump/DDL text, so two structurally identical
    /// databases share cache entries even if loaded from different files.
    pub fn new(db: &Database, query: &str) -> CacheKey {
        CacheKey {
            db_fingerprint: fnv1a64(dump_to_string(db).as_bytes()),
            constraint_fingerprint: fnv1a64(schema_to_ddl(db.schema()).as_bytes()),
            query: query.to_owned(),
        }
    }

    fn shard_hash(&self) -> u64 {
        fnv1a64_parts([
            self.db_fingerprint.to_le_bytes().as_slice(),
            self.constraint_fingerprint.to_le_bytes().as_slice(),
            self.query.as_bytes(),
        ])
    }
}

struct Entry {
    value: Arc<SynopsisSet>,
    /// Use stamp from the owning shard's clock; smallest = LRU victim.
    stamp: u64,
}

struct Shard {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
}

/// Point-in-time counters, reported by the `stats` protocol command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Maximum resident entries across all shards.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over lookups, or 0 when the cache is untouched.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded LRU map from [`CacheKey`] to `Arc<SynopsisSet>`.
pub struct SynopsisCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Default shard count; a small power of two well above typical worker
/// counts, so two workers rarely hash to the same lock.
pub const DEFAULT_SHARDS: usize = 8;

impl SynopsisCache {
    /// A cache holding at most `capacity` synopsis sets across `shards`
    /// shards. Capacity is rounded up to a multiple of the shard count
    /// (each shard gets an equal slice, and a shard never exceeds its own
    /// slice even if others sit empty).
    pub fn new(capacity: usize, shards: usize) -> SynopsisCache {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        SynopsisCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), clock: 0 }))
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache with the default shard count.
    pub fn with_capacity(capacity: usize) -> SynopsisCache {
        SynopsisCache::new(capacity, DEFAULT_SHARDS)
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.shard_hash() % self.shards.len() as u64) as usize]
    }

    /// Looks up a synopsis, refreshing its LRU stamp on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<SynopsisSet>> {
        let mut shard = self.shard(key).lock();
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a synopsis, evicting the shard's LRU entry if it is full.
    /// Returns the evicted value, mostly for tests.
    pub fn insert(&self, key: CacheKey, value: Arc<SynopsisSet>) -> Option<Arc<SynopsisSet>> {
        let mut shard = self.shard(&key).lock();
        shard.clock += 1;
        let stamp = shard.clock;
        let mut evicted = None;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            // Linear scan for the LRU victim: per-shard capacity is small
            // (a handful of synopsis sets), so a scan beats the bookkeeping
            // of an intrusive list.
            if let Some(victim) =
                shard.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k.clone())
            {
                evicted = shard.map.remove(&victim).map(|e| e.value);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(key, Entry { value, stamp });
        evicted
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().map.len()).sum(),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.per_shard_capacity * self.shards.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn key(q: &str) -> CacheKey {
        CacheKey { db_fingerprint: 1, constraint_fingerprint: 2, query: q.to_owned() }
    }

    fn empty_set() -> Arc<SynopsisSet> {
        Arc::new(SynopsisSet {
            entries: vec![],
            hom_size: 0,
            total_homs: 0,
            build_time: Duration::ZERO,
        })
    }

    #[test]
    fn get_miss_then_hit() {
        let cache = SynopsisCache::with_capacity(4);
        assert!(cache.get(&key("Q1")).is_none());
        cache.insert(key("Q1"), empty_set());
        assert!(cache.get(&key("Q1")).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn single_shard_evicts_lru() {
        let cache = SynopsisCache::new(2, 1);
        cache.insert(key("a"), empty_set());
        cache.insert(key("b"), empty_set());
        assert!(cache.get(&key("a")).is_some()); // refresh "a": "b" is now LRU
        cache.insert(key("c"), empty_set());
        assert!(cache.get(&key("a")).is_some());
        assert!(cache.get(&key("b")).is_none(), "LRU entry should be evicted");
        assert!(cache.get(&key("c")).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let cache = SynopsisCache::new(1, 1);
        cache.insert(key("a"), empty_set());
        assert!(cache.insert(key("a"), empty_set()).is_none());
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn distinct_fingerprints_are_distinct_keys() {
        let cache = SynopsisCache::with_capacity(8);
        cache.insert(key("Q"), empty_set());
        let other_db = CacheKey { db_fingerprint: 99, ..key("Q") };
        assert!(cache.get(&other_db).is_none());
        let other_sigma = CacheKey { constraint_fingerprint: 99, ..key("Q") };
        assert!(cache.get(&other_sigma).is_none());
    }

    #[test]
    fn concurrent_access_keeps_counts_consistent() {
        let cache = Arc::new(SynopsisCache::with_capacity(64));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..50 {
                        let k = key(&format!("Q{}", (t * 50 + i) % 20));
                        if cache.get(&k).is_none() {
                            cache.insert(k, empty_set());
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 200);
        assert!(stats.entries <= 20);
    }
}
