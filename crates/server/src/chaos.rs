//! The chaos runner behind `cqa-cli chaos`.
//!
//! Spins up an in-process server, computes the offline driver's answers
//! for every request seed, arms a seeded [`cqa_chaos::FaultPlan`], and
//! replays closed-loop load through the retrying client. After the storm
//! it disarms and checks the reliability invariants from
//! `docs/RELIABILITY.md`:
//!
//! 1. **No abort** — the run completes; worker panics are contained by
//!    the pool and connection drops by the client's reconnect logic.
//! 2. **Every request resolves** — each request ends in an answer or a
//!    documented structured error envelope; a transport error that
//!    survives the whole retry budget is a violation.
//! 3. **Answers stay bit-identical** — every answer observed during the
//!    storm, and every post-chaos replay, matches the offline driver for
//!    that seed exactly. Faults may cost cache hits, never correctness.
//! 4. **Failures leave a trace** — when clients saw structured errors,
//!    the flight recorder holds error digests for them.
//!
//! The report is data ([`ChaosReport`]); `cqa-cli chaos` renders it and
//! exits nonzero when [`ChaosReport::passed`] is false.

use crate::client::Client;
use crate::metrics::MetricsSnapshot;
use crate::protocol::{ErrorKind, QueryRequest, Response, WireAnswer};
use crate::retry::{RetryPolicy, RetryingClient};
use crate::server::{Server, ServerConfig};
use cqa_chaos::{FaultPlan, PointCounts};
use cqa_common::{CqaError, Mt64, Result};
use cqa_core::{apx_cqa, Budget, Scheme};
use cqa_storage::{Database, Value};
use std::collections::BTreeMap;

/// What to run and what to inject.
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// Query text every request issues.
    pub query: String,
    /// Approximation scheme requested.
    pub scheme: Scheme,
    /// ε for every request.
    pub eps: f64,
    /// δ for every request.
    pub delta: f64,
    /// Concurrent closed-loop clients (min 1).
    pub clients: usize,
    /// Requests per client (min 1).
    pub requests: usize,
    /// Root seed: drives per-request seeds and retry jitter; the fault
    /// plan carries its own seed.
    pub seed: u64,
    /// Server worker threads (0 = one per CPU).
    pub workers: usize,
    /// The fault plan to arm for the storm window.
    pub plan: FaultPlan,
    /// Retry policy for the storm clients; the default is deliberately
    /// patient (deep attempt ceiling, long budget) so only a systemic
    /// failure — not an unlucky streak — exhausts it.
    pub retry: RetryPolicy,
}

impl ChaosSpec {
    /// A spec with harness defaults: KLM at ε=0.2 δ=0.25, 2×16 requests,
    /// 2 workers, and the patient retry policy.
    pub fn new(query: &str, plan: FaultPlan) -> ChaosSpec {
        ChaosSpec {
            query: query.to_owned(),
            scheme: Scheme::Klm,
            eps: 0.2,
            delta: 0.25,
            clients: 2,
            requests: 16,
            seed: plan.seed,
            workers: 2,
            plan,
            retry: RetryPolicy {
                max_attempts: 16,
                base_delay_ms: 5,
                cap_delay_ms: 200,
                budget_ms: 60_000,
            },
        }
    }
}

/// What one chaos run observed, plus any invariant violations.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Requests issued during the storm window.
    pub total_requests: usize,
    /// Requests that ended in answers bit-identical to the offline driver.
    pub answers_ok: usize,
    /// Requests that ended in a structured error envelope.
    pub structured_errors: usize,
    /// Final `overloaded` envelopes.
    pub overloaded: usize,
    /// Final `deadline_exceeded` envelopes.
    pub deadline: usize,
    /// Final `internal` envelopes.
    pub internal: usize,
    /// Final `bad_request` envelopes.
    pub bad_request: usize,
    /// Retry sleeps taken across all clients.
    pub retries: u64,
    /// Reconnects after transport failures across all clients.
    pub reconnects: u64,
    /// Flight-recorder digests with a structured error recorded.
    pub flight_error_digests: usize,
    /// Per-point hit and injection counters from the armed plan.
    pub points: Vec<PointCounts>,
    /// The server's metrics after the post-chaos verification pass.
    pub server: MetricsSnapshot,
    /// Reliability-invariant violations; empty means the run passed.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total faults injected across all points.
    pub fn injections(&self) -> u64 {
        self.points.iter().map(|p| p.injections).sum()
    }

    /// The human-readable report `cqa-cli chaos` prints.
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos: {} requests, {} answered bit-identical, {} structured errors \
             (overloaded {}, deadline {}, internal {}, bad_request {})\n",
            self.total_requests,
            self.answers_ok,
            self.structured_errors,
            self.overloaded,
            self.deadline,
            self.internal,
            self.bad_request,
        );
        out.push_str(&format!(
            "  client retries {}, reconnects {}; server saw {} retried requests; \
             flight recorded {} error digests\n",
            self.retries, self.reconnects, self.server.retried_requests, self.flight_error_digests,
        ));
        out.push_str("  injections by point:\n");
        for pc in &self.points {
            if pc.hits > 0 || pc.injections > 0 {
                out.push_str(&format!(
                    "    {:<20} {} injected / {} hits\n",
                    pc.point, pc.injections, pc.hits
                ));
            }
        }
        if self.passed() {
            out.push_str("  PASS: all reliability invariants held");
        } else {
            out.push_str(&format!("  FAIL: {} invariant violation(s)\n", self.violations.len()));
            for v in &self.violations {
                out.push_str(&format!("    - {v}\n"));
            }
            out.pop();
        }
        out
    }
}

/// One resolved offline answer: tuple values, frequency, sample count.
type OfflineAnswer = (Vec<Value>, f64, u64);

fn answers_match(got: &[WireAnswer], want: &[OfflineAnswer]) -> bool {
    got.len() == want.len()
        && got.iter().zip(want).all(|(g, (tuple, frequency, samples))| {
            &g.tuple == tuple && g.frequency == *frequency && g.samples == *samples
        })
}

/// Disarms the plan when dropped, so a panicking client thread cannot
/// leave the process armed for whatever runs next.
struct DisarmOnDrop;

impl Drop for DisarmOnDrop {
    fn drop(&mut self) {
        cqa_chaos::disarm();
    }
}

fn request_for(spec: &ChaosSpec, seed: u64) -> QueryRequest {
    QueryRequest {
        query: spec.query.clone(),
        scheme: spec.scheme,
        eps: spec.eps,
        delta: spec.delta,
        timeout_ms: None,
        seed,
        request_id: None,
        attempt: 0,
    }
}

/// What one storm client tallied.
#[derive(Debug, Default)]
struct ClientOutcome {
    answers_ok: usize,
    overloaded: usize,
    deadline: usize,
    internal: usize,
    bad_request: usize,
    retries: u64,
    reconnects: u64,
    violations: Vec<String>,
}

/// Runs the full chaos experiment: offline baseline, storm, post-chaos
/// verification. `Err` means the harness itself could not run (bad query,
/// bind failure, invalid plan); invariant violations land in the report.
pub fn run_chaos(db: Database, spec: &ChaosSpec) -> Result<ChaosReport> {
    let clients = spec.clients.max(1);
    let requests = spec.requests.max(1);
    let cq = cqa_query::parse(db.schema(), &spec.query)?;

    // The offline baseline: what a local driver run answers per seed.
    // Computed before the database moves into the server, and before any
    // fault is armed.
    let seed_for = |c: usize, i: usize| -> u64 {
        spec.seed ^ ((c * requests + i) as u64).wrapping_mul(0x9E37)
    };
    let mut expected: BTreeMap<u64, Vec<OfflineAnswer>> = BTreeMap::new();
    for c in 0..clients {
        for i in 0..requests {
            let seed = seed_for(c, i);
            if expected.contains_key(&seed) {
                continue;
            }
            let mut rng = Mt64::new(seed);
            let res = apx_cqa(
                &db,
                &cq,
                spec.scheme,
                spec.eps,
                spec.delta,
                &Budget::unbounded(),
                &mut rng,
            )?;
            let resolved = res
                .answers
                .iter()
                .map(|te| {
                    (te.tuple.iter().map(|&d| db.resolve(d)).collect(), te.frequency, te.samples)
                })
                .collect();
            expected.insert(seed, resolved);
        }
    }

    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: spec.workers,
        ..ServerConfig::default()
    };
    let bind_err = |e: std::io::Error| CqaError::Parse(format!("chaos server: {e}"));
    let mut handle = Server::bind(db, config).map_err(bind_err)?.spawn().map_err(bind_err)?;
    let addr = handle.addr().to_string();

    // Warm up outside the storm so the first preprocessing run (and the
    // dump already loaded by the caller) are not part of the experiment.
    let mut observer = Client::connect(addr.as_str())?;
    if let Response::Error { kind, message } = observer.query(request_for(spec, spec.seed))? {
        return Err(CqaError::InvalidParameter(format!(
            "chaos warmup failed: {} ({message})",
            kind.name()
        )));
    }

    cqa_chaos::arm(&spec.plan).map_err(CqaError::InvalidParameter)?;
    let _disarm = DisarmOnDrop;
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let spec = &*spec;
                let expected = &expected;
                let addr = addr.as_str();
                scope.spawn(move || -> ClientOutcome {
                    let mut out = ClientOutcome::default();
                    let jitter_seed = spec.seed ^ 0xC11E ^ c as u64;
                    let mut client =
                        match RetryingClient::connect(addr, spec.retry.clone(), jitter_seed) {
                            Ok(client) => client,
                            Err(e) => {
                                out.violations.push(format!("client {c} failed to connect: {e}"));
                                return out;
                            }
                        };
                    for i in 0..requests {
                        let seed = seed_for(c, i);
                        match client.query(&request_for(spec, seed)) {
                            Ok(Response::Answers { answers, .. }) => {
                                if answers_match(&answers, &expected[&seed]) {
                                    out.answers_ok += 1;
                                } else {
                                    out.violations.push(format!(
                                        "seed {seed:#x}: answers diverged from the offline \
                                         driver during chaos"
                                    ));
                                }
                            }
                            Ok(Response::Error { kind, .. }) => match kind {
                                ErrorKind::Overloaded => out.overloaded += 1,
                                ErrorKind::DeadlineExceeded => out.deadline += 1,
                                ErrorKind::Internal => out.internal += 1,
                                ErrorKind::BadRequest => {
                                    out.bad_request += 1;
                                    out.violations.push(format!(
                                        "seed {seed:#x}: bad_request for a known-good query"
                                    ));
                                }
                            },
                            Ok(other) => out
                                .violations
                                .push(format!("seed {seed:#x}: non-query response {other:?}")),
                            Err(e) => out.violations.push(format!(
                                "seed {seed:#x}: transport error survived the retry budget: {e}"
                            )),
                        }
                    }
                    out.retries = client.retries();
                    out.reconnects = client.reconnects();
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("chaos client thread panicked")).collect()
    });
    drop(_disarm);
    let points = cqa_chaos::counts();

    let mut report = ChaosReport {
        total_requests: clients * requests,
        answers_ok: 0,
        structured_errors: 0,
        overloaded: 0,
        deadline: 0,
        internal: 0,
        bad_request: 0,
        retries: 0,
        reconnects: 0,
        flight_error_digests: 0,
        points,
        server: MetricsSnapshot::default(),
        violations: Vec::new(),
    };
    for out in outcomes {
        report.answers_ok += out.answers_ok;
        report.overloaded += out.overloaded;
        report.deadline += out.deadline;
        report.internal += out.internal;
        report.bad_request += out.bad_request;
        report.retries += out.retries;
        report.reconnects += out.reconnects;
        report.violations.extend(out.violations);
    }
    report.structured_errors =
        report.overloaded + report.deadline + report.internal + report.bad_request;

    // Post-chaos verification: with faults off, every seed must answer —
    // and answer bit-identically. This is the cache-coherence check: a
    // fault that corrupted a cached synopsis would show up here.
    for (&seed, want) in &expected {
        match observer.query(request_for(spec, seed)) {
            Ok(Response::Answers { answers, .. }) => {
                if !answers_match(&answers, want) {
                    report.violations.push(format!(
                        "seed {seed:#x}: post-chaos answers diverged from the offline driver \
                         (cache incoherent)"
                    ));
                }
            }
            Ok(other) => report
                .violations
                .push(format!("seed {seed:#x}: post-chaos non-answer response {other:?}")),
            Err(e) => {
                report.violations.push(format!("seed {seed:#x}: post-chaos transport error: {e}"))
            }
        }
    }

    let (digests, _dropped) = observer.debug_flight()?;
    report.flight_error_digests = digests.iter().filter(|d| d.error.is_some()).count();
    if report.structured_errors > report.bad_request && report.flight_error_digests == 0 {
        report.violations.push(
            "clients saw structured errors but the flight recorder holds no error digest"
                .to_owned(),
        );
    }
    report.server = observer.stats()?;
    handle.shutdown();
    Ok(report)
}
