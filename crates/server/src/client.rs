//! A blocking client for the line-delimited JSON protocol.
//!
//! One [`Client`] wraps one TCP connection and issues requests strictly in
//! sequence (the protocol has no request IDs — responses arrive in order).
//! The CLI's `serve`-facing subcommands and the integration tests both sit
//! on top of this type; it is deliberately the only place in the workspace
//! that knows how to talk to a socket.

use crate::metrics::MetricsSnapshot;
use crate::protocol::{
    DebugTarget, QueryRequest, Request, Response, StatsFormat, WireDigest, WireSlowlogEntry,
};
use cqa_common::{CqaError, Json, Result};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to a `cqa-server`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn io_err(e: std::io::Error) -> CqaError {
    CqaError::Parse(format!("server connection: {e}"))
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone().map_err(io_err)?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sets (or clears) the socket read timeout, to bound how long a call
    /// may block if the server stalls.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.reader.get_ref().set_read_timeout(timeout).map_err(io_err)
    }

    /// Sends one request and waits for its response.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).map_err(io_err)?;
        if n == 0 {
            return Err(CqaError::Parse("server closed the connection".into()));
        }
        Response::from_line(&reply)
    }

    /// Runs one approximate-CQA query.
    pub fn query(&mut self, request: QueryRequest) -> Result<Response> {
        self.roundtrip(&Request::Query(request))
    }

    /// Fetches the server's metrics snapshot.
    pub fn stats(&mut self) -> Result<MetricsSnapshot> {
        match self.roundtrip(&Request::Stats { format: StatsFormat::Json })? {
            Response::Stats(v) => MetricsSnapshot::from_json(&v),
            Response::Error { kind, message } => {
                Err(CqaError::Parse(format!("stats failed: {} ({message})", kind.name())))
            }
            other => Err(CqaError::Parse(format!("unexpected stats response {other:?}"))),
        }
    }

    /// Fetches the server's full metrics registry as raw `stats` JSON
    /// (flat snapshot fields plus the nested `registry` object).
    pub fn stats_json(&mut self) -> Result<Json> {
        match self.roundtrip(&Request::Stats { format: StatsFormat::Json })? {
            Response::Stats(v) => Ok(v),
            Response::Error { kind, message } => {
                Err(CqaError::Parse(format!("stats failed: {} ({message})", kind.name())))
            }
            other => Err(CqaError::Parse(format!("unexpected stats response {other:?}"))),
        }
    }

    /// Fetches the server's metrics in Prometheus text exposition format.
    pub fn stats_prometheus(&mut self) -> Result<String> {
        match self.roundtrip(&Request::Stats { format: StatsFormat::Prometheus })? {
            Response::StatsText(text) => Ok(text),
            Response::Error { kind, message } => {
                Err(CqaError::Parse(format!("stats failed: {} ({message})", kind.name())))
            }
            other => Err(CqaError::Parse(format!("unexpected stats response {other:?}"))),
        }
    }

    /// Fetches the server's recorded trace as a Chrome `trace_event` JSON
    /// array (empty unless the server process has tracing enabled).
    pub fn trace(&mut self) -> Result<Json> {
        match self.roundtrip(&Request::Trace)? {
            Response::Trace(events) => Ok(events),
            Response::Error { kind, message } => {
                Err(CqaError::Parse(format!("trace failed: {} ({message})", kind.name())))
            }
            other => Err(CqaError::Parse(format!("unexpected trace response {other:?}"))),
        }
    }

    /// Fetches the server's flight recorder: per-request digests in
    /// completion order, plus how many older digests ring wrap dropped.
    pub fn debug_flight(&mut self) -> Result<(Vec<WireDigest>, u64)> {
        match self.roundtrip(&Request::Debug { target: DebugTarget::Flight })? {
            Response::Flight { digests, dropped } => Ok((digests, dropped)),
            Response::Error { kind, message } => {
                Err(CqaError::Parse(format!("debug flight failed: {} ({message})", kind.name())))
            }
            other => Err(CqaError::Parse(format!("unexpected debug flight response {other:?}"))),
        }
    }

    /// Fetches the server's slow/error log, oldest first.
    pub fn debug_slowlog(&mut self) -> Result<Vec<WireSlowlogEntry>> {
        match self.roundtrip(&Request::Debug { target: DebugTarget::Slowlog })? {
            Response::Slowlog(entries) => Ok(entries),
            Response::Error { kind, message } => {
                Err(CqaError::Parse(format!("debug slowlog failed: {} ({message})", kind.name())))
            }
            other => Err(CqaError::Parse(format!("unexpected debug slowlog response {other:?}"))),
        }
    }

    /// Checks liveness; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<u64> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong { version } => Ok(version),
            Response::Error { kind, message } => {
                Err(CqaError::Parse(format!("ping failed: {} ({message})", kind.name())))
            }
            other => Err(CqaError::Parse(format!("unexpected ping response {other:?}"))),
        }
    }
}
