//! Exhaustive interleaving checks for the sharded-LRU cache protocol.
//!
//! These tests model the concurrency skeleton of
//! `cqa_server::cache::SynopsisCache` — one shard behind a mutex, atomic
//! hit/miss/eviction counters bumped while the shard lock is held, stamp-
//! based LRU eviction — with `loom` (the vendored interleaving explorer in
//! `shims/loom`). Every sequentially-consistent schedule of the modeled
//! operations is enumerated, so the invariants below hold for *all*
//! interleavings, not just the ones a stress test happens to hit.
//!
//! The model intentionally mirrors the real code's structure (compare
//! `crates/server/src/cache.rs`): one `Mutex<Shard>` with a logical clock
//! and a capacity-bounded map, counters as atomics beside the lock. The
//! last test is a *negative control*: it breaks the counter discipline the
//! way a refactor plausibly would (load-then-store outside the lock) and
//! asserts the explorer catches the lost update — evidence the harness
//! detects the bug class these tests guard against.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The modeled shard: key → LRU stamp, plus the stamp clock. Values are
/// irrelevant to the race being checked, so keys stand in for entries.
struct Shard {
    entries: Vec<(u32, u64)>,
    clock: u64,
}

/// A one-shard miniature of `SynopsisCache` over loom primitives.
struct ModelCache {
    shard: Mutex<Shard>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ModelCache {
    fn new(capacity: usize) -> ModelCache {
        ModelCache {
            shard: Mutex::new(Shard { entries: Vec::new(), clock: 0 }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Mirrors `SynopsisCache::get`: refresh the LRU stamp on a hit, bump
    /// the hit/miss counter while the shard lock is held.
    fn get(&self, key: u32) -> bool {
        let mut shard = self.shard.lock();
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => {
                entry.1 = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Mirrors `SynopsisCache::insert`: evict the smallest-stamp entry
    /// when inserting a new key into a full shard.
    fn insert(&self, key: u32) {
        let mut shard = self.shard.lock();
        shard.clock += 1;
        let stamp = shard.clock;
        let exists = shard.entries.iter().any(|(k, _)| *k == key);
        if !exists && shard.entries.len() >= self.capacity {
            if let Some(victim) =
                shard.entries.iter().enumerate().min_by_key(|(_, (_, s))| *s).map(|(i, _)| i)
            {
                shard.entries.remove(victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        match shard.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => entry.1 = stamp,
            None => shard.entries.push((key, stamp)),
        }
    }

    fn contains(&self, key: u32) -> bool {
        self.shard.lock().entries.iter().any(|(k, _)| *k == key)
    }

    fn len(&self) -> usize {
        self.shard.lock().entries.len()
    }
}

/// Two threads race insert+get on distinct keys against a capacity-1
/// shard. In every interleaving: the shard never exceeds capacity, the
/// loser of the insert race is the one eviction, and the counters account
/// for exactly the lookups that happened.
#[test]
fn insert_get_race_keeps_counters_and_capacity_consistent() {
    loom::model(|| {
        let cache = Arc::new(ModelCache::new(1));
        let c2 = Arc::clone(&cache);
        let t = loom::thread::spawn(move || {
            c2.insert(1);
            c2.get(1)
        });
        cache.insert(2);
        cache.get(2);
        t.join().unwrap();

        assert_eq!(cache.len(), 1, "shard exceeded its capacity");
        assert_eq!(
            cache.evictions.load(Ordering::Relaxed),
            1,
            "two distinct inserts into a full shard evict exactly once"
        );
        let hits = cache.hits.load(Ordering::Relaxed);
        let misses = cache.misses.load(Ordering::Relaxed);
        assert_eq!(hits + misses, 2, "every lookup is counted exactly once");
        assert_eq!(cache.shard.lock().clock, 4, "each operation advances the clock once");
    });
}

/// A `get` refreshing an entry's stamp races an `insert` that must evict
/// the LRU victim. Whichever order the schedule picks, the new key is
/// resident afterwards, exactly one old key was evicted, and the refresh
/// is never double-counted.
#[test]
fn lru_refresh_races_eviction_without_corruption() {
    loom::model(|| {
        let cache = Arc::new(ModelCache::new(2));
        // Resident: 1 (older), 2 (newer) — stamps 1 and 2.
        cache.insert(1);
        cache.insert(2);
        let c2 = Arc::clone(&cache);
        let t = loom::thread::spawn(move || {
            c2.get(1) // refresh: makes 2 the LRU victim, if it wins the race
        });
        cache.insert(3); // full shard: must evict the current LRU
        let refreshed = t.join().unwrap();

        assert!(cache.contains(3), "the new entry is always resident");
        assert_eq!(cache.len(), 2, "eviction kept the shard at capacity");
        assert_eq!(cache.evictions.load(Ordering::Relaxed), 1);
        // The victim depends on the schedule, but is determined by whether
        // the refresh's stamp landed before the eviction scan.
        let survivor_is_1 = cache.contains(1);
        let survivor_is_2 = cache.contains(2);
        assert!(survivor_is_1 ^ survivor_is_2, "exactly one of the old entries survives");
        // The shard lock serializes the two operations, so the outcome is
        // fully determined by which won: a successful refresh means key 2
        // became the victim; a miss means key 1 already had.
        assert_eq!(
            refreshed, survivor_is_1,
            "survivor must match the refresh/evict order the schedule chose"
        );
    });
}

/// Negative control: bump the miss counter with a separate load and store
/// *outside* the lock — the bug an innocent-looking refactor of
/// `SynopsisCache::get` could introduce. The explorer must find the
/// interleaving that loses an update.
#[test]
fn torn_counter_update_is_caught_by_the_model() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let cache = Arc::new(ModelCache::new(4));
            let c2 = Arc::clone(&cache);
            let broken_miss = |c: &ModelCache| {
                let shard = c.shard.lock();
                // BUG under test: the guard is dropped before the counter
                // update, and the update is a divisible load-then-store.
                drop(shard);
                let v = c.misses.load(Ordering::Relaxed);
                c.misses.store(v + 1, Ordering::Relaxed);
            };
            let t = loom::thread::spawn(move || broken_miss(&c2));
            broken_miss(&cache);
            t.join().unwrap();
            assert_eq!(cache.misses.load(Ordering::Relaxed), 2, "lost counter update");
        })
    }));
    let msg = match outcome {
        Ok(report) => panic!(
            "torn counter survived {} interleavings — the model is not exploring enough",
            report.iterations
        ),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".to_owned()),
    };
    assert!(msg.contains("lost counter update"), "unexpected failure: {msg}");
}
