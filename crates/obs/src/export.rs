//! Exporters: Chrome `trace_event` JSON and a human-readable flat profile.
//!
//! The JSON output is the "JSON Array Format" understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): a top-level
//! array of event objects where complete spans use phase `"X"` with `ts` +
//! `dur` in microseconds and instants use phase `"i"`. The flat profile is
//! the text a terminal wants: one line per span name with call count,
//! total, self (total minus child spans), and average wall time, sorted by
//! self time.

use crate::trace::{snapshot, EventKind, TraceEvent};
use cqa_common::Json;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Renders events as a Chrome `trace_event` JSON array.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    let rows = events
        .iter()
        .map(|e| {
            let mut pairs = vec![
                ("name", Json::str(e.name)),
                (
                    "ph",
                    Json::str(match e.kind {
                        EventKind::Span => "X",
                        EventKind::Instant => "i",
                    }),
                ),
                ("pid", Json::from(1u64)),
                ("tid", Json::from(u64::from(e.tid))),
                ("ts", Json::from(e.ts_micros)),
            ];
            match e.kind {
                EventKind::Span => {
                    pairs.push(("dur", Json::from(e.dur_micros)));
                }
                EventKind::Instant => {
                    // Thread-scoped instant marker.
                    pairs.push(("s", Json::str("t")));
                }
            }
            pairs.push((
                "args",
                Json::obj([
                    ("a0", Json::from(e.a0)),
                    ("a1", Json::from(e.a1)),
                    ("self_us", Json::from(e.self_micros)),
                ]),
            ));
            Json::obj(pairs)
        })
        .collect();
    Json::Arr(rows)
}

/// Snapshots the global ring and serializes it as Chrome trace JSON.
pub fn chrome_trace_string() -> String {
    let (events, _) = snapshot();
    chrome_trace(&events).to_string_compact()
}

/// Snapshots the global ring and streams Chrome trace JSON to `path`
/// (a full ring runs to megabytes, so the text is never materialized).
/// Returns the number of events written.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<usize> {
    let (events, _) = snapshot();
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    chrome_trace(&events).write_compact(&mut f)?;
    f.write_all(b"\n")?;
    f.flush()?;
    Ok(events.len())
}

#[derive(Default)]
struct Row {
    calls: u64,
    total_us: u64,
    self_us: u64,
}

/// Renders a flat profile over span events: per-name call counts with
/// total/self/average wall time, heaviest self time first.
pub fn flat_profile(events: &[TraceEvent], dropped: u64) -> String {
    let mut rows: BTreeMap<&'static str, Row> = BTreeMap::new();
    let mut instants = 0u64;
    for e in events {
        match e.kind {
            EventKind::Span => {
                let row = rows.entry(e.name).or_default();
                row.calls += 1;
                row.total_us = row.total_us.saturating_add(e.dur_micros);
                row.self_us = row.self_us.saturating_add(e.self_micros);
            }
            EventKind::Instant => instants += 1,
        }
    }
    let mut sorted: Vec<(&'static str, Row)> = rows.into_iter().collect();
    sorted.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then(a.0.cmp(b.0)));

    let mut out = String::new();
    out.push_str(&format!(
        "flat profile: {} span events, {} instants, {} dropped\n",
        events.len() - instants as usize,
        instants,
        dropped
    ));
    out.push_str(&format!(
        "{:>10}  {:>12}  {:>12}  {:>10}  name\n",
        "calls", "total ms", "self ms", "avg µs"
    ));
    for (name, row) in &sorted {
        let avg = row.total_us as f64 / row.calls as f64;
        out.push_str(&format!(
            "{:>10}  {:>12.3}  {:>12.3}  {:>10.1}  {}\n",
            row.calls,
            row.total_us as f64 / 1000.0,
            row.self_us as f64 / 1000.0,
            avg,
            name
        ));
    }
    out
}

/// Snapshots the global ring and renders the flat profile.
pub fn flat_profile_string() -> String {
    let (events, dropped) = snapshot();
    flat_profile(&events, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, kind: EventKind, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name,
            kind,
            tid: 1,
            depth: 0,
            ts_micros: ts,
            dur_micros: dur,
            self_micros: dur,
            a0: 0,
            a1: 0,
        }
    }

    #[test]
    fn chrome_trace_is_parseable_json_array() {
        let events = vec![ev("a", EventKind::Span, 10, 500), ev("b", EventKind::Instant, 20, 0)];
        let json = chrome_trace(&events).to_string_compact();
        let parsed = Json::parse(&json).unwrap();
        let arr = parsed.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].req_str("ph").unwrap(), "X");
        assert_eq!(arr[0].get("dur").and_then(Json::as_u64), Some(500));
        assert_eq!(arr[1].req_str("ph").unwrap(), "i");
        assert_eq!(arr[1].req_str("s").unwrap(), "t");
    }

    #[test]
    fn flat_profile_aggregates_and_sorts() {
        let events = vec![
            ev("light", EventKind::Span, 0, 100),
            ev("heavy", EventKind::Span, 0, 9_000),
            ev("heavy", EventKind::Span, 1, 1_000),
            ev("mark", EventKind::Instant, 2, 0),
        ];
        let text = flat_profile(&events, 3);
        assert!(text.contains("3 span events, 1 instants, 3 dropped"), "{text}");
        let heavy = text.find("heavy").unwrap();
        let light = text.find("light").unwrap();
        assert!(heavy < light, "heaviest self time first:\n{text}");
        assert!(text.contains("10.000"), "total ms for heavy:\n{text}");
    }
}
