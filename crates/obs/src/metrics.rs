//! A label-free metrics registry: named counters, gauges, and log₂
//! latency histograms, registered once and rendered to JSON or Prometheus
//! text exposition format.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! around atomics; updating them is lock-free and allocation-free. The
//! registry itself is only locked at registration and render time.
//! Registration is idempotent by name: asking for an existing name of the
//! same kind returns a handle to the same underlying metric (so call-site
//! `OnceLock` caching and repeated registration agree), while a kind
//! mismatch panics — that is a programming error, not a runtime condition.

use cqa_common::Json;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

const BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter (mostly for tests).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for mirroring a counter maintained elsewhere
    /// (e.g. cache statistics) into the registry just before rendering.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

/// A fixed-bucket log₂ histogram of microsecond latencies.
///
/// Bucket `i` covers `[2^i, 2^{i+1})` µs (observations of 0 µs land in
/// bucket 0), which spans 1 µs to over an hour in 32 buckets with ≤ 2×
/// relative error on reported percentiles — the same trade
/// Prometheus-style exponential histograms make. The running sum
/// saturates at `u64::MAX` µs instead of wrapping, so the mean degrades
/// gracefully under absurd inputs rather than going backwards.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        self.record_micros(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one observation given directly in microseconds.
    pub fn record_micros(&self, micros: u64) {
        let idx = (micros.max(1).ilog2() as usize).min(BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.0.sum_micros, micros);
    }

    /// Folds another histogram's observations into this one — per-worker
    /// histograms aggregate into a global one this way. `other` is read
    /// with relaxed loads; concurrent recording into `other` may or may
    /// not be captured, as with any snapshot.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.0.count.fetch_add(other.0.count.load(Ordering::Relaxed), Ordering::Relaxed);
        saturating_fetch_add(&self.0.sum_micros, other.0.sum_micros.load(Ordering::Relaxed));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in microseconds (saturating).
    pub fn sum_micros(&self) -> u64 {
        self.0.sum_micros.load(Ordering::Relaxed)
    }

    /// Mean latency in milliseconds; 0 when empty.
    pub fn mean_ms(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum_micros() as f64 / count as f64 / 1000.0
    }

    /// Approximate `q`-quantile (`0 < q ≤ 1`) in milliseconds: the upper
    /// edge of the bucket containing the `⌈q·n⌉`-th observation, i.e. an
    /// overestimate by at most 2×. Empty histograms report 0, never NaN.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << (i + 1)) as f64 / 1000.0;
            }
        }
        (1u64 << BUCKETS) as f64 / 1000.0
    }

    /// Several quantiles from **one** relaxed bucket snapshot — the export
    /// hook for perf recorders and the stats renderers. Calling
    /// [`Histogram::quantile_ms`] per quantile re-reads the buckets each
    /// time, so concurrent recording can make p99 < p50; reading the
    /// snapshot once keeps the reported quantiles mutually consistent.
    /// Values follow `quantile_ms` semantics (upper bucket edge, ≤ 2×
    /// overestimate, 0 when empty).
    pub fn quantiles_ms(&self, qs: &[f64]) -> Vec<f64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        qs.iter()
            .map(|&q| {
                if total == 0 {
                    return 0.0;
                }
                let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
                let mut seen = 0;
                for (i, &c) in counts.iter().enumerate() {
                    seen += c;
                    if seen >= rank {
                        return (1u64 << (i + 1)) as f64 / 1000.0;
                    }
                }
                (1u64 << BUCKETS) as f64 / 1000.0
            })
            .collect()
    }

    /// A relaxed snapshot of the per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(self.0.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// Adds without wrapping: pins at `u64::MAX` on overflow.
fn saturating_fetch_add(cell: &AtomicU64, n: u64) {
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_add(n)));
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    help: String,
    handle: Handle,
}

/// A named collection of metrics, rendered to JSON or Prometheus text.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        f.debug_list().entries(entries.iter().map(|e| (&e.name, e.handle.kind()))).finish()
    }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers `fresh` under `name`, or retrieves the existing handle.
    /// (Takes the handle by value — constructing an unused one is two atomic
    /// allocations at startup, and it keeps this call transparent to
    /// cqa-lint's call graph, unlike a `make` closure.)
    fn register(&self, name: &str, help: &str, fresh: Handle) -> Handle {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            let handle = e.handle.clone();
            assert!(
                std::mem::discriminant(&handle) == std::mem::discriminant(&fresh),
                "metric '{name}' already registered as a {}, requested as a {}",
                handle.kind(),
                fresh.kind()
            );
            return handle;
        }
        entries.push(Entry { name: name.to_owned(), help: help.to_owned(), handle: fresh.clone() });
        fresh
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.register(name, help, Handle::Counter(Counter::new())) {
            Handle::Counter(c) => c,
            // cqa-lint: allow(no-panic-in-request-path): register() asserts the stored discriminant matches the requested kind, so this arm is dead
            _ => unreachable!(),
        }
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, help, Handle::Gauge(Gauge::new())) {
            Handle::Gauge(g) => g,
            // cqa-lint: allow(no-panic-in-request-path): register() asserts the stored discriminant matches the requested kind, so this arm is dead
            _ => unreachable!(),
        }
    }

    /// Registers (or retrieves) a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        match self.register(name, help, Handle::Histogram(Histogram::new())) {
            Handle::Histogram(h) => h,
            // cqa-lint: allow(no-panic-in-request-path): register() asserts the stored discriminant matches the requested kind, so this arm is dead
            _ => unreachable!(),
        }
    }

    /// Renders every metric as one JSON object. Counters and gauges are
    /// plain numbers; histograms are nested objects with count, sum, mean,
    /// and the standard percentiles.
    pub fn to_json(&self) -> Json {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut obj = std::collections::BTreeMap::new();
        for e in entries.iter() {
            let v = match &e.handle {
                Handle::Counter(c) => Json::from(c.get()),
                Handle::Gauge(g) => Json::Num(g.get() as f64),
                Handle::Histogram(h) => {
                    let qs = h.quantiles_ms(&[0.50, 0.95, 0.99]);
                    Json::obj([
                        ("count", Json::from(h.count())),
                        ("sum_micros", Json::from(h.sum_micros())),
                        ("mean_ms", Json::from(h.mean_ms())),
                        ("p50_ms", Json::from(qs[0])),
                        ("p95_ms", Json::from(qs[1])),
                        ("p99_ms", Json::from(qs[2])),
                    ])
                }
            };
            obj.insert(e.name.clone(), v);
        }
        Json::Obj(obj)
    }

    /// Renders every metric in the Prometheus text exposition format.
    /// Histogram buckets are emitted cumulatively with `le` in seconds.
    pub fn to_prometheus(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for e in entries.iter() {
            let name = sanitize(&e.name);
            if !e.help.is_empty() {
                out.push_str(&format!("# HELP {name} {}\n", e.help));
            }
            match &e.handle {
                Handle::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Handle::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                }
                Handle::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cumulative += c;
                        let le = (1u64 << (i + 1)) as f64 / 1e6;
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                    out.push_str(&format!("{name}_sum {}\n", h.sum_micros() as f64 / 1e6));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                }
            }
        }
        out
    }
}

/// Maps a metric name onto the Prometheus charset `[a-zA-Z0-9_:]`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// The process-wide registry library crates record into (the scheme and
/// synopsis counters). Servers keep their own [`Registry`] per instance so
/// embedded/test deployments stay isolated.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        for micros in [1u64, 3, 100, 1000, 100_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.quantile_ms(1.0), 131.072);
        assert_eq!(h.quantile_ms(0.5), 0.128);
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        // Duration::MAX is ~5.8e14 µs short of overflowing as_micros, but
        // far beyond u64::MAX µs, so record() clamps it to u64::MAX.
        h.record(Duration::MAX);
        assert_eq!(h.sum_micros(), u64::MAX);
        // A second observation must not wrap the sum back around zero.
        h.record(Duration::from_secs(1));
        assert_eq!(h.sum_micros(), u64::MAX, "sum wrapped on overflow");
        assert_eq!(h.count(), 2);
        assert!(h.mean_ms() > 1e12, "mean went backwards after overflow");
    }

    #[test]
    fn histogram_zero_duration_lands_in_bucket_zero() {
        let h = Histogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum_micros(), 0);
        assert_eq!(h.bucket_counts()[0], 1);
        // Upper edge of bucket 0 is 2 µs.
        assert_eq!(h.quantile_ms(1.0), 0.002);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn quantiles_ms_matches_per_quantile_reads() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record_micros(i);
        }
        let qs = [0.50, 0.95, 0.99, 0.999, 1.0];
        let batch = h.quantiles_ms(&qs);
        assert_eq!(batch.len(), qs.len());
        for (q, got) in qs.iter().zip(&batch) {
            assert_eq!(*got, h.quantile_ms(*q), "q={q}");
        }
        // Quantiles from one snapshot are monotone in q.
        for w in batch.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(Histogram::new().quantiles_ms(&qs).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_histogram_quantiles_are_defined() {
        let h = Histogram::new();
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            let v = h.quantile_ms(q);
            assert!(v.is_finite() && v == 0.0, "q={q} gave {v}");
        }
        assert!(h.mean_ms().is_finite());
    }

    #[test]
    fn quantiles_within_2x_on_synthetic_distributions() {
        // Uniform 1..=1000 µs.
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record_micros(i);
        }
        for (q, exact) in [(0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let est = h.quantile_ms(q) * 1000.0;
            assert!(
                est >= exact && est <= 2.0 * exact,
                "uniform q={q}: estimate {est} µs vs exact {exact} µs"
            );
        }
        // Geometric point masses at powers of two (worst case for log
        // buckets: every estimate sits exactly at an upper edge).
        let g = Histogram::new();
        for k in 0..10u32 {
            for _ in 0..100 {
                g.record_micros(1u64 << k);
            }
        }
        for q in [0.50f64, 0.95, 0.99] {
            let rank = (q * 1000.0).ceil() as u64;
            let exact = (1u64 << ((rank - 1) / 100)) as f64;
            let est = g.quantile_ms(q) * 1000.0;
            assert!(
                est >= exact && est <= 2.0 * exact,
                "geometric q={q}: estimate {est} µs vs exact {exact} µs"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn merge_preserves_count_sum_and_buckets(
            xs in prop::collection::vec(0u64..2_000_000, 0..40),
            ys in prop::collection::vec(0u64..2_000_000, 0..40),
        ) {
            let a = Histogram::new();
            let b = Histogram::new();
            let combined = Histogram::new();
            for &x in &xs {
                a.record_micros(x);
                combined.record_micros(x);
            }
            for &y in &ys {
                b.record_micros(y);
                combined.record_micros(y);
            }
            a.merge(&b);
            prop_assert_eq!(a.count(), combined.count());
            prop_assert_eq!(a.sum_micros(), combined.sum_micros());
            prop_assert_eq!(a.bucket_counts(), combined.bucket_counts());
        }
    }

    #[test]
    fn registry_is_idempotent_by_name() {
        let r = Registry::new();
        let c1 = r.counter("requests_total", "requests");
        let c2 = r.counter("requests_total", "requests");
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3, "same name must share the underlying counter");
        let g = r.gauge("depth", "queue depth");
        g.set(-4);
        assert_eq!(g.get(), -4);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        r.counter("m", "");
        r.gauge("m", "");
    }

    #[test]
    fn renders_json_and_prometheus() {
        let r = Registry::new();
        let c = r.counter("requests_total", "Requests accepted.");
        let g = r.gauge("queue.depth", "Live queue depth.");
        let h = r.histogram("latency", "Request latency.");
        c.add(7);
        g.set(3);
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(3000));

        let json = r.to_json();
        assert_eq!(json.get("requests_total").and_then(Json::as_u64), Some(7));
        assert_eq!(json.get("queue.depth").and_then(Json::as_f64), Some(3.0));
        let hist = json.get("latency").unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
        assert!(hist.req_f64("p50_ms").unwrap() > 0.0);

        let prom = r.to_prometheus();
        assert!(prom.contains("# TYPE requests_total counter"), "{prom}");
        assert!(prom.contains("requests_total 7"), "{prom}");
        assert!(prom.contains("# TYPE queue_depth gauge"), "{prom}");
        assert!(prom.contains("queue_depth 3"), "{prom}");
        assert!(prom.contains("# TYPE latency histogram"), "{prom}");
        assert!(prom.contains("latency_bucket{le=\"+Inf\"} 2"), "{prom}");
        assert!(prom.contains("latency_count 2"), "{prom}");
        assert!(prom.contains("latency_sum 0.0031"), "{prom}");
        // Buckets are cumulative: the 100 µs observation is counted again
        // in the bucket holding the 3000 µs one.
        assert!(prom.contains("latency_bucket{le=\"0.004096\"} 2"), "{prom}");
        // Round-trip through the parser used by the integration tests.
        assert!(Json::parse(&json.to_string_compact()).is_ok());
    }
}
