//! # cqa-obs — observability for the cqa workspace
//!
//! Std-only, zero-cost-when-disabled tracing and metrics, shared by every
//! crate in the workspace:
//!
//! * **Tracing** ([`trace`]): RAII [`span`]s and [`instant`] events with
//!   monotonic microsecond timestamps, thread-local span stacks (for depth
//!   and self-time attribution), and a lock-free bounded ring buffer. Off
//!   by default; instrumented code pays one relaxed atomic load until
//!   [`set_enabled`]`(true)`.
//! * **Export** ([`export`]): the recorded ring renders as Chrome
//!   `trace_event` JSON (open in `chrome://tracing` or Perfetto) or as a
//!   terminal flat profile sorted by self time.
//! * **Metrics** ([`metrics`]): named counters, gauges, and log₂ latency
//!   [`Histogram`]s in a [`Registry`] rendered to JSON or Prometheus text
//!   exposition format. A process-wide [`metrics::global`] registry holds
//!   library-level counters (samples drawn, rejected draws, scheme runs,
//!   budget expiries); servers own per-instance registries.
//! * **Flight recorder** ([`flight`]): always-on per-request digests in a
//!   lock-free ring, a tail-sampled slow/error log of full span trees, and
//!   a thread-local request context (`request_id`), served live by
//!   `cqa-server`'s `debug flight` / `debug slowlog` commands.
//!
//! ```
//! cqa_obs::set_enabled(true);
//! {
//!     let mut g = cqa_obs::span("demo/work");
//!     g.set_args(42, 0);
//! }
//! let json = cqa_obs::export::chrome_trace_string();
//! assert!(json.contains("demo/work"));
//! cqa_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]

pub mod export;
pub mod flight;
pub mod metrics;
pub mod names;
pub mod trace;

pub use export::{chrome_trace_string, flat_profile_string, write_chrome_trace};
pub use flight::{FlightDigest, SlowlogEntry};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::{
    enabled, instant, instant_args, now_micros, record_span, set_enabled, span, span_args,
    EventKind, SpanGuard, TraceEvent,
};
