//! Span/event tracing: thread-local span stacks, monotonic timestamps, and
//! a lock-free bounded ring buffer of events.
//!
//! The design goals, in order:
//!
//! 1. **Zero cost when disabled.** Every public entry point starts with one
//!    relaxed load of a global [`AtomicBool`]; nothing else happens while
//!    tracing is off, so instrumented hot paths (the sampler loops, the
//!    synopsis builder) pay a single predictable branch.
//! 2. **No locks on the hot path when enabled.** Events land in a global
//!    bounded ring of atomic slots. Writers claim a ticket with one
//!    `fetch_add` and then publish through a per-slot sequence word
//!    (odd = being written, even = ticket it holds data for), so recording
//!    is wait-free and the exporter can discard torn slots — the classic
//!    seqlock, expressed entirely in safe Rust because every field of a
//!    slot is itself an atomic.
//! 3. **Integer-only events.** Span names are `&'static str` interned to
//!    `u32` ids once per name (a short mutex-guarded scan — spans are
//!    phase-granular, not per-sample), so a recorded event is seven plain
//!    integer stores.
//!
//! When the ring wraps, the oldest events are overwritten; the exporter
//! reports how many were dropped. Timestamps are microseconds since a
//! process-wide epoch captured on first use, which is exactly the clock
//! Chrome's `trace_event` format wants.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Default ring capacity in events (~4 MiB resident once touched).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is tracing currently on? One relaxed load — the check instrumented code
/// performs before doing any other tracing work.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off process-wide. Spans opened while disabled stay
/// no-ops; a span opened while enabled records to the ring on drop only if
/// tracing is still enabled then (it may still land in an open request
/// capture — see [`begin_capture`]).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch. Usable as an explicit start
/// time for [`record_span`].
#[inline]
pub fn now_micros() -> u64 {
    epoch().elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------------

fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

pub(crate) fn intern(name: &'static str) -> u32 {
    let mut table = names().lock().unwrap_or_else(PoisonError::into_inner);
    for (i, n) in table.iter().enumerate() {
        // Pointer equality first: the common case is the same literal site.
        if std::ptr::eq(*n as *const str, name as *const str) || *n == name {
            return i as u32;
        }
    }
    table.push(name);
    (table.len() - 1) as u32
}

pub(crate) fn name_of(id: u32) -> &'static str {
    names().lock().unwrap_or_else(PoisonError::into_inner).get(id as usize).copied().unwrap_or("?")
}

// ---------------------------------------------------------------------------
// The event ring
// ---------------------------------------------------------------------------

/// What a recorded event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `ts` is the start, `dur` the wall duration.
    Span,
    /// A point-in-time marker; `dur` is 0.
    Instant,
}

#[derive(Default)]
struct Slot {
    /// 0 = never written; odd = write in progress; even nonzero = holds the
    /// event of ticket `(seq - 2) / 2`.
    seq: AtomicU64,
    name: AtomicU32,
    /// `kind` (bit 0) | `depth << 1` (7 bits) | `tid << 8`.
    meta: AtomicU64,
    ts: AtomicU64,
    dur: AtomicU64,
    self_us: AtomicU64,
    a0: AtomicU64,
    a1: AtomicU64,
}

struct Ring {
    slots: Vec<Slot>,
    head: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, Slot::default);
        Ring { slots, head: AtomicU64::new(0) }
    }

    /// `timing` is `[duration, self-time]` in microseconds.
    fn push(
        &self,
        name: u32,
        kind: EventKind,
        depth: u8,
        ts: u64,
        timing: [u64; 2],
        args: [u64; 2],
    ) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) % self.slots.len()];
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        slot.name.store(name, Ordering::Relaxed);
        let kind_bit = match kind {
            EventKind::Span => 0u64,
            EventKind::Instant => 1u64,
        };
        let meta = kind_bit | (u64::from(depth & 0x7f) << 1) | (u64::from(thread_id()) << 8);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.ts.store(ts, Ordering::Relaxed);
        slot.dur.store(timing[0], Ordering::Relaxed);
        slot.self_us.store(timing[1], Ordering::Relaxed);
        slot.a0.store(args[0], Ordering::Relaxed);
        slot.a1.store(args[1], Ordering::Relaxed);
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring::new(DEFAULT_CAPACITY))
}

// ---------------------------------------------------------------------------
// Thread ids and the span stack
// ---------------------------------------------------------------------------

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

struct Frame {
    /// Wall micros spent in already-closed direct children, for self-time.
    child_micros: u64,
}

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

fn thread_id() -> u32 {
    TID.with(|t| *t)
}

// ---------------------------------------------------------------------------
// Request-scoped span capture
// ---------------------------------------------------------------------------
//
// The flight recorder's slow/error log wants the *full span tree of one
// request* even while global tracing is off. A thread can therefore open a
// capture window: spans and instants recorded on that thread land in a
// pre-sized thread-local buffer (in addition to the global ring when
// tracing is enabled). The buffer never grows after `begin_capture`, so a
// capture adds no allocation to the instrumented paths themselves.

struct Capture {
    /// Pre-sized at `begin_capture`; `buf[..len]` holds captured events.
    buf: Vec<TraceEvent>,
    len: usize,
}

thread_local! {
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    static CAPTURE: RefCell<Option<Capture>> = const { RefCell::new(None) };
}

/// Is a span-capture window open on this thread? One thread-local load.
#[inline(always)]
pub fn capturing() -> bool {
    CAPTURING.with(|c| c.get())
}

/// Opens a span-capture window on this thread: up to `limit` spans and
/// instants recorded here are retained for [`take_capture`], independent of
/// whether global tracing is enabled. Replaces any previous window. The
/// buffer is thread-local and **reused** across windows — a worker thread
/// pays its allocation once, not per request (the `cqa-perf` flight suite
/// gates on that).
pub fn begin_capture(limit: usize) {
    CAPTURE.with(|c| {
        let mut slot = c.borrow_mut();
        match slot.as_mut() {
            Some(cap) if cap.buf.len() == limit => cap.len = 0,
            _ => {
                let mut cap = Capture { buf: Vec::new(), len: 0 };
                cap.buf.resize_with(limit, unwritten_event);
                *slot = Some(cap);
            }
        }
    });
    CAPTURING.with(|c| c.set(true));
}

/// Closes this thread's capture window, leaving the captured events in
/// the reusable buffer for [`take_capture`]. The cheap path: no
/// allocation, no copy, no sort.
pub fn end_capture() {
    CAPTURING.with(|c| c.set(false));
}

/// Returns (and clears) the events captured since the last
/// [`begin_capture`] on this thread, in timestamp order. Events beyond the
/// window's limit were discarded. Also closes the window if it is still
/// open. Allocates the returned copy — callers on the fast path use
/// [`end_capture`] and never pay for it.
pub fn take_capture() -> Vec<TraceEvent> {
    CAPTURING.with(|c| c.set(false));
    CAPTURE.with(|c| match c.borrow_mut().as_mut() {
        Some(cap) => {
            let mut events = cap.buf[..cap.len].to_vec();
            cap.len = 0;
            events.sort_by_key(|e| e.ts_micros);
            events
        }
        None => Vec::new(),
    })
}

fn unwritten_event() -> TraceEvent {
    TraceEvent {
        name: "",
        kind: EventKind::Span,
        tid: 0,
        depth: 0,
        ts_micros: 0,
        dur_micros: 0,
        self_micros: 0,
        a0: 0,
        a1: 0,
    }
}

/// Writes into the pre-sized buffer; no allocation happens here.
fn capture_push(ev: TraceEvent) {
    CAPTURE.with(|c| {
        if let Some(cap) = c.borrow_mut().as_mut() {
            if cap.len < cap.buf.len() {
                cap.buf[cap.len] = ev;
                cap.len += 1;
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Public recording API
// ---------------------------------------------------------------------------

/// An RAII guard for one span. Records a [`EventKind::Span`] event covering
/// construction-to-drop when tracing was enabled at construction; otherwise
/// a no-op shell.
pub struct SpanGuard {
    name: u32,
    start: u64,
    args: [u64; 2],
    active: bool,
}

/// Opens a span. `name` should be a stable, slash-separated label like
/// `"synopsis/build"`.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_args(name, 0, 0)
}

/// Opens a span carrying two integer arguments (attribution values such as
/// a seed, a noise level ×100, or a sample count).
#[inline]
pub fn span_args(name: &'static str, a0: u64, a1: u64) -> SpanGuard {
    if !enabled() && !capturing() {
        return SpanGuard { name: 0, start: 0, args: [0, 0], active: false };
    }
    STACK.with(|s| s.borrow_mut().push(Frame { child_micros: 0 }));
    SpanGuard { name: intern(name), start: now_micros(), args: [a0, a1], active: true }
}

impl SpanGuard {
    /// Replaces the span's arguments — for values only known at the end,
    /// like the number of samples a loop ran.
    #[inline]
    pub fn set_args(&mut self, a0: u64, a1: u64) {
        if self.active {
            self.args = [a0, a1];
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur = now_micros().saturating_sub(self.start);
        let (depth, self_us) = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards pop in push order, but a panicking unwind can run drops
            // with the stack already torn down; degrade to zero child
            // attribution rather than panicking inside `Drop`.
            let child_micros = stack.pop().map_or(0, |frame| frame.child_micros);
            let self_us = dur.saturating_sub(child_micros);
            if let Some(parent) = stack.last_mut() {
                parent.child_micros = parent.child_micros.saturating_add(dur);
            }
            (stack.len().min(0x7f) as u8, self_us)
        });
        if enabled() {
            ring().push(self.name, EventKind::Span, depth, self.start, [dur, self_us], self.args);
        }
        if capturing() {
            capture_push(TraceEvent {
                name: name_of(self.name),
                kind: EventKind::Span,
                tid: thread_id(),
                depth,
                ts_micros: self.start,
                dur_micros: dur,
                self_micros: self_us,
                a0: self.args[0],
                a1: self.args[1],
            });
        }
    }
}

/// Records a point-in-time event.
#[inline]
pub fn instant(name: &'static str) {
    instant_args(name, 0, 0);
}

/// Records a point-in-time event with two integer arguments.
#[inline]
pub fn instant_args(name: &'static str, a0: u64, a1: u64) {
    if !enabled() && !capturing() {
        return;
    }
    let depth = STACK.with(|s| s.borrow().len().min(0x7f) as u8);
    let ts = now_micros();
    if enabled() {
        ring().push(intern(name), EventKind::Instant, depth, ts, [0, 0], [a0, a1]);
    }
    if capturing() {
        capture_push(TraceEvent {
            name,
            kind: EventKind::Instant,
            tid: thread_id(),
            depth,
            ts_micros: ts,
            dur_micros: 0,
            self_micros: 0,
            a0,
            a1,
        });
    }
}

/// Records a completed span from an explicit start timestamp (from
/// [`now_micros`]) to now. Unlike [`span`], this does not interact with the
/// thread-local stack — use it for durations that straddle threads, such as
/// the time a request spent queued before a worker picked it up.
#[inline]
pub fn record_span(name: &'static str, start_micros: u64, a0: u64, a1: u64) {
    if !enabled() && !capturing() {
        return;
    }
    let dur = now_micros().saturating_sub(start_micros);
    if enabled() {
        ring().push(intern(name), EventKind::Span, 0, start_micros, [dur, dur], [a0, a1]);
    }
    if capturing() {
        capture_push(TraceEvent {
            name,
            kind: EventKind::Span,
            tid: thread_id(),
            depth: 0,
            ts_micros: start_micros,
            dur_micros: dur,
            self_micros: dur,
            a0,
            a1,
        });
    }
}

// ---------------------------------------------------------------------------
// Draining
// ---------------------------------------------------------------------------

/// One event read back out of the ring.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// The interned span/event name.
    pub name: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Small dense per-thread id (1-based, assigned on first event).
    pub tid: u32,
    /// Span-stack depth at record time (capped at 127).
    pub depth: u8,
    /// Start time, microseconds since the trace epoch.
    pub ts_micros: u64,
    /// Wall duration (0 for instants).
    pub dur_micros: u64,
    /// Duration minus time spent in direct child spans.
    pub self_micros: u64,
    /// First user argument.
    pub a0: u64,
    /// Second user argument.
    pub a1: u64,
}

/// Events recorded so far and how many were overwritten by ring wrap.
/// Torn slots (a writer was mid-publish during the read) are skipped.
/// Events are returned in timestamp order.
pub fn snapshot() -> (Vec<TraceEvent>, u64) {
    let rb = ring();
    let head = rb.head.load(Ordering::Acquire);
    let dropped = head.saturating_sub(rb.slots.len() as u64);
    let mut events = Vec::new();
    for slot in &rb.slots {
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == 0 || seq % 2 == 1 {
            continue;
        }
        let name = slot.name.load(Ordering::Relaxed);
        let meta = slot.meta.load(Ordering::Relaxed);
        let ts = slot.ts.load(Ordering::Relaxed);
        let dur = slot.dur.load(Ordering::Relaxed);
        let self_us = slot.self_us.load(Ordering::Relaxed);
        let a0 = slot.a0.load(Ordering::Relaxed);
        let a1 = slot.a1.load(Ordering::Relaxed);
        if slot.seq.load(Ordering::Acquire) != seq {
            continue; // torn: a writer reclaimed the slot while we read
        }
        events.push(TraceEvent {
            name: name_of(name),
            kind: if meta & 1 == 0 { EventKind::Span } else { EventKind::Instant },
            tid: (meta >> 8) as u32,
            depth: ((meta >> 1) & 0x7f) as u8,
            ts_micros: ts,
            dur_micros: dur,
            self_micros: self_us,
            a0,
            a1,
        });
    }
    events.sort_by_key(|e| e.ts_micros);
    (events, dropped)
}

/// Empties the ring. Callers must ensure no spans are concurrently being
/// recorded (fine for tests and CLI runs); events published during the
/// clear may survive it.
pub fn clear() {
    let rb = ring();
    rb.head.store(0, Ordering::Release);
    for slot in &rb.slots {
        slot.seq.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring and the enable flag are process-global, so exercise all the
    /// behaviours from one test to avoid cross-test interference.
    #[test]
    fn spans_instants_and_self_time() {
        set_enabled(true);
        clear();
        {
            let mut outer = span_args("test/outer", 1, 2);
            {
                let _inner = span("test/inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            instant_args("test/marker", 7, 8);
            outer.set_args(3, 4);
        }
        let t0 = now_micros();
        std::thread::sleep(std::time::Duration::from_millis(1));
        record_span("test/detached", t0, 9, 0);
        set_enabled(false);

        let (events, dropped) = snapshot();
        assert_eq!(dropped, 0);
        let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        let outer = by_name("test/outer");
        let inner = by_name("test/inner");
        let marker = by_name("test/marker");
        let detached = by_name("test/detached");

        assert_eq!(outer.kind, EventKind::Span);
        assert_eq!((outer.a0, outer.a1), (3, 4));
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(marker.kind, EventKind::Instant);
        assert_eq!((marker.a0, marker.a1), (7, 8));
        // Self time excludes the inner span.
        assert!(inner.dur_micros >= 2_000);
        assert!(outer.dur_micros >= inner.dur_micros);
        assert!(outer.self_micros <= outer.dur_micros - inner.dur_micros);
        assert!(detached.dur_micros >= 1_000);
        // Timestamp-sorted.
        assert!(events.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));

        // Disabled ⇒ nothing records.
        let before = snapshot().0.len();
        let _g = span("test/disabled");
        instant("test/disabled");
        drop(_g);
        assert_eq!(snapshot().0.len(), before);
    }

    /// Deliberately does not touch the global enable flag (other tests in
    /// this module own it): capture must work in either state.
    #[test]
    fn capture_is_independent_of_global_tracing() {
        begin_capture(3);
        {
            let _outer = span_args("test/cap-outer", 5, 0);
            let _inner = span("test/cap-inner");
        }
        instant("test/cap-marker");
        instant("test/cap-overflow"); // 4th event: beyond the window limit
        let events = take_capture();
        assert!(!capturing());
        assert_eq!(events.len(), 3, "window limit respected");
        let names: Vec<_> = events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"test/cap-outer"));
        assert!(names.contains(&"test/cap-inner"));
        assert!(names.contains(&"test/cap-marker"));
        let inner = events.iter().find(|e| e.name == "test/cap-inner").unwrap();
        assert_eq!(inner.depth, 1, "span tree depth is preserved");
        // Timestamp-sorted; a second take returns nothing.
        assert!(events.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
        assert!(take_capture().is_empty());
        // Cross-thread durations are captured too.
        begin_capture(4);
        record_span("test/cap-detached", now_micros(), 1, 2);
        let events = take_capture();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "test/cap-detached");
        assert_eq!((events[0].a0, events[0].a1), (1, 2));
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("test/intern-a");
        let b = intern("test/intern-b");
        assert_ne!(a, b);
        assert_eq!(intern("test/intern-a"), a);
        assert_eq!(name_of(a), "test/intern-a");
    }
}
