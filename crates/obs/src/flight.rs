//! The flight recorder: always-on, per-request observability.
//!
//! Three pieces, all process-global:
//!
//! 1. **The digest ring** — a fixed-capacity lock-free ring of
//!    [`FlightDigest`]s, one per completed server request: request id,
//!    canonical query fingerprint, cache hit/miss, queue wait, sample
//!    count, the estimator's CI half-width at termination, and the latency
//!    breakdown. Publication uses the same safe-Rust seqlock as the trace
//!    ring in [`crate::trace`] (ticket via `fetch_add`, odd = writing,
//!    even = published, readers skip torn slots), so recording a digest is
//!    a handful of plain atomic stores and never blocks. On wrap the
//!    oldest digests are overwritten; snapshots report how many.
//! 2. **The slow/error log** — a small bounded log of [`SlowlogEntry`]s
//!    that tail-samples the *full span tree* (captured per request via
//!    [`crate::trace::begin_capture`]) of requests that exceeded a latency
//!    threshold or returned a structured error. This is the expensive,
//!    rare path, so a mutex-guarded deque is fine here.
//! 3. **The request context** — a thread-local request id installed by
//!    [`begin_request`] for the duration of one request's execution on a
//!    worker thread, so any layer can attribute telemetry to the request
//!    without threading an id through every signature.
//!
//! Unlike tracing, the recorder is **on by default**: digests are integer
//! stores into pre-allocated slots, cheap enough for every request. The
//! [`set_enabled`] toggle exists for A/B overhead measurement (the
//! `cqa-perf` `server/flight_{on,off}_throughput_rps` series) and for
//! tests.

use crate::trace::{self, TraceEvent};
use cqa_common::Json;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Digest-ring capacity in requests.
pub const DEFAULT_CAPACITY: usize = 1 << 10;

/// Longest request id retained in a digest slot; longer client-supplied
/// ids are rejected at the protocol layer, so truncation never happens in
/// practice.
pub const MAX_REQUEST_ID_BYTES: usize = 32;

/// Bounded slow/error-log length (oldest entries fall off).
pub const SLOWLOG_CAPACITY: usize = 64;

/// Spans captured per request for the slow/error log's span tree.
pub const CAPTURE_SPANS: usize = 256;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is the flight recorder on? One relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the flight recorder on or off process-wide (it is on by
/// default). Off, [`begin_request`]'s span capture, [`record`], and
/// [`slowlog_record`] are no-ops — the knob the `cqa-perf` flight suite
/// uses to price the recorder.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// The request context
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT_ID: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Opens a request scope on this thread: installs `request_id` as the
/// thread's current request id and opens a span-capture window (up to
/// [`CAPTURE_SPANS`] spans) for the slow/error log. Call on the worker
/// thread that will execute the request, before any request work. A
/// no-op while the recorder is disabled.
pub fn begin_request(request_id: &str) {
    if !enabled() {
        return;
    }
    CURRENT_ID.with(|c| {
        let mut id = c.borrow_mut();
        id.clear();
        id.push_str(request_id);
    });
    trace::begin_capture(CAPTURE_SPANS);
}

/// The request id installed by [`begin_request`], empty outside a request
/// scope.
pub fn current_request_id() -> String {
    CURRENT_ID.with(|c| c.borrow().clone())
}

/// Closes this thread's request scope. The captured spans stay in the
/// thread's reusable buffer: the fast path pays nothing, and a caller
/// that decides the request was slow (or failed) pulls them with
/// [`take_request_spans`] before the next [`begin_request`] overwrites
/// them.
pub fn end_request() {
    CURRENT_ID.with(|c| c.borrow_mut().clear());
    trace::end_capture();
}

/// The span tree captured for this thread's most recent request scope, in
/// timestamp order. Allocates; call only for requests headed to the
/// slow/error log.
pub fn take_request_spans() -> Vec<TraceEvent> {
    trace::take_capture()
}

// ---------------------------------------------------------------------------
// The digest ring
// ---------------------------------------------------------------------------

/// One completed request, compressed to fixed-width fields.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDigest {
    /// Client-supplied or server-generated request id (≤
    /// [`MAX_REQUEST_ID_BYTES`] bytes survive the ring).
    pub request_id: String,
    /// Canonical query fingerprint (0 when the query never parsed).
    pub query_fingerprint: u64,
    /// Scheme display name (`"Natural"`, `"KL"`, `"KLM"`, `"Cover"`).
    pub scheme: &'static str,
    /// Did the synopsis come from the cache?
    pub cache_hit: bool,
    /// Structured error kind name for failed requests.
    pub error: Option<&'static str>,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait_micros: u64,
    /// Samples the scheme drew.
    pub samples: u64,
    /// Running sample variance of the estimator at termination.
    pub variance: f64,
    /// One-standard-error CI half-width of the estimate at termination
    /// (the worst answer's, for multi-answer queries).
    pub ci_half_width: f64,
    /// Synopsis-build time (0 on cache hits).
    pub preprocess_micros: u64,
    /// Sampling time.
    pub scheme_micros: u64,
    /// Admission-to-reply wall time.
    pub total_micros: u64,
    /// Completion timestamp, microseconds since the trace epoch.
    pub ts_micros: u64,
}

/// A digest slot: every field is an atomic, published through `seq` with
/// the trace ring's seqlock protocol (0 = never written, odd = write in
/// progress, even = holds the digest of ticket `(seq - 2) / 2`).
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    id: [AtomicU64; 4],
    query_fp: AtomicU64,
    /// Interned scheme name (via the trace interner).
    scheme: AtomicU32,
    /// Interned error kind name; meaningful only when flag bit 1 is set.
    err: AtomicU32,
    /// Bit 0 = cache hit, bit 1 = error present.
    flags: AtomicU64,
    queue_wait_us: AtomicU64,
    samples: AtomicU64,
    variance_bits: AtomicU64,
    ci_bits: AtomicU64,
    preprocess_us: AtomicU64,
    scheme_us: AtomicU64,
    total_us: AtomicU64,
    ts_us: AtomicU64,
}

struct Ring {
    slots: Vec<Slot>,
    head: AtomicU64,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| {
        let mut slots = Vec::with_capacity(DEFAULT_CAPACITY);
        slots.resize_with(DEFAULT_CAPACITY, Slot::default);
        Ring { slots, head: AtomicU64::new(0) }
    })
}

/// Packs the first [`MAX_REQUEST_ID_BYTES`] bytes of `id` into four
/// little-endian words, NUL-padded.
fn id_words(id: &str) -> [u64; 4] {
    let mut words = [0u64; 4];
    for (i, b) in id.as_bytes().iter().take(MAX_REQUEST_ID_BYTES).enumerate() {
        words[i / 8] |= u64::from(*b) << ((i % 8) * 8);
    }
    words
}

fn id_string(words: [u64; 4]) -> String {
    let mut bytes = Vec::with_capacity(MAX_REQUEST_ID_BYTES);
    'outer: for w in words {
        for k in 0..8 {
            let b = ((w >> (k * 8)) & 0xff) as u8;
            if b == 0 {
                break 'outer;
            }
            bytes.push(b);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Records one request digest into the ring (a no-op while the recorder is
/// disabled). Wait-free: a ticket claim, one slot-claim CAS attempt, and
/// plain atomic stores — no loops.
pub fn record(d: &FlightDigest) {
    if !enabled() {
        return;
    }
    let rb = ring();
    let ticket = rb.head.fetch_add(1, Ordering::Relaxed);
    let slot = &rb.slots[(ticket as usize) % rb.slots.len()];
    // Claim the slot before touching the payload. Two writers meet on one
    // slot only when the ring wraps a full lap while the older one is
    // still mid-publish; interleaved stores could then leave a *torn*
    // digest under a stable even sequence (the loom model
    // `crates/obs/tests/model_flight.rs` finds exactly that for an
    // unserialized writer). Per-slot sequences only move forward, so on
    // any contention — an odd sequence (writer in progress) or a newer
    // ticket already in the slot — this digest is dropped instead.
    let writing = 2 * ticket + 1;
    let cur = slot.seq.load(Ordering::Acquire);
    if cur % 2 == 1
        || cur > writing
        || slot.seq.compare_exchange(cur, writing, Ordering::AcqRel, Ordering::Relaxed).is_err()
    {
        return;
    }
    for (w, v) in slot.id.iter().zip(id_words(&d.request_id)) {
        w.store(v, Ordering::Relaxed);
    }
    slot.query_fp.store(d.query_fingerprint, Ordering::Relaxed);
    slot.scheme.store(trace::intern(d.scheme), Ordering::Relaxed);
    slot.err.store(trace::intern(d.error.unwrap_or("")), Ordering::Relaxed);
    let flags = u64::from(d.cache_hit) | (u64::from(d.error.is_some()) << 1);
    slot.flags.store(flags, Ordering::Relaxed);
    slot.queue_wait_us.store(d.queue_wait_micros, Ordering::Relaxed);
    slot.samples.store(d.samples, Ordering::Relaxed);
    slot.variance_bits.store(d.variance.to_bits(), Ordering::Relaxed);
    slot.ci_bits.store(d.ci_half_width.to_bits(), Ordering::Relaxed);
    slot.preprocess_us.store(d.preprocess_micros, Ordering::Relaxed);
    slot.scheme_us.store(d.scheme_micros, Ordering::Relaxed);
    slot.total_us.store(d.total_micros, Ordering::Relaxed);
    slot.ts_us.store(d.ts_micros, Ordering::Relaxed);
    slot.seq.store(writing + 1, Ordering::Release);
}

/// Digests recorded so far (completion-timestamp order) and how many were
/// overwritten by ring wrap. Torn slots (a writer was mid-publish) are
/// skipped, exactly as in the trace ring.
pub fn snapshot() -> (Vec<FlightDigest>, u64) {
    let rb = ring();
    let head = rb.head.load(Ordering::Acquire);
    let dropped = head.saturating_sub(rb.slots.len() as u64);
    let mut digests = Vec::new();
    for slot in &rb.slots {
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == 0 || seq % 2 == 1 {
            continue;
        }
        let mut words = [0u64; 4];
        for (w, v) in slot.id.iter().zip(words.iter_mut()) {
            *v = w.load(Ordering::Relaxed);
        }
        let query_fp = slot.query_fp.load(Ordering::Relaxed);
        let scheme = slot.scheme.load(Ordering::Relaxed);
        let err = slot.err.load(Ordering::Relaxed);
        let flags = slot.flags.load(Ordering::Relaxed);
        let queue_wait_us = slot.queue_wait_us.load(Ordering::Relaxed);
        let samples = slot.samples.load(Ordering::Relaxed);
        let variance_bits = slot.variance_bits.load(Ordering::Relaxed);
        let ci_bits = slot.ci_bits.load(Ordering::Relaxed);
        let preprocess_us = slot.preprocess_us.load(Ordering::Relaxed);
        let scheme_us = slot.scheme_us.load(Ordering::Relaxed);
        let total_us = slot.total_us.load(Ordering::Relaxed);
        let ts_us = slot.ts_us.load(Ordering::Relaxed);
        if slot.seq.load(Ordering::Acquire) != seq {
            continue; // torn: a writer reclaimed the slot while we read
        }
        digests.push(FlightDigest {
            request_id: id_string(words),
            query_fingerprint: query_fp,
            scheme: trace::name_of(scheme),
            cache_hit: flags & 1 != 0,
            error: (flags & 2 != 0).then(|| trace::name_of(err)),
            queue_wait_micros: queue_wait_us,
            samples,
            variance: f64::from_bits(variance_bits),
            ci_half_width: f64::from_bits(ci_bits),
            preprocess_micros: preprocess_us,
            scheme_micros: scheme_us,
            total_micros: total_us,
            ts_micros: ts_us,
        });
    }
    digests.sort_by_key(|d| d.ts_micros);
    (digests, dropped)
}

/// Digests lost to ring wrap so far — [`snapshot`]'s `dropped` without
/// building the snapshot. One atomic load, cheap enough for `stats`.
pub fn dropped_count() -> u64 {
    let rb = ring();
    rb.head.load(Ordering::Acquire).saturating_sub(rb.slots.len() as u64)
}

/// Empties the digest ring (tests; callers must ensure no concurrent
/// writers, as with [`crate::trace::clear`]).
pub fn clear() {
    let rb = ring();
    rb.head.store(0, Ordering::Release);
    for slot in &rb.slots {
        slot.seq.store(0, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// The slow/error log
// ---------------------------------------------------------------------------

/// One tail-sampled request: its identity plus the full captured span
/// tree.
#[derive(Debug, Clone)]
pub struct SlowlogEntry {
    /// The request's id.
    pub request_id: String,
    /// Structured error kind name, when the request failed.
    pub error: Option<&'static str>,
    /// Admission-to-reply wall time.
    pub total_micros: u64,
    /// Completion timestamp, microseconds since the trace epoch.
    pub ts_micros: u64,
    /// The request's span tree (timestamp order; depth reconstructs
    /// nesting).
    pub spans: Vec<TraceEvent>,
}

fn slowlog() -> &'static Mutex<VecDeque<SlowlogEntry>> {
    static LOG: OnceLock<Mutex<VecDeque<SlowlogEntry>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Appends to the slow/error log, evicting the oldest entry past
/// [`SLOWLOG_CAPACITY`]. A no-op while the recorder is disabled.
pub fn slowlog_record(entry: SlowlogEntry) {
    if !enabled() {
        return;
    }
    let mut log = slowlog().lock().unwrap_or_else(PoisonError::into_inner);
    if log.len() >= SLOWLOG_CAPACITY {
        log.pop_front();
    }
    log.push_back(entry);
}

/// The current slow/error-log contents, oldest first.
pub fn slowlog_snapshot() -> Vec<SlowlogEntry> {
    slowlog().lock().unwrap_or_else(PoisonError::into_inner).iter().cloned().collect()
}

/// The current slow/error-log length, without cloning the entries.
pub fn slowlog_len() -> usize {
    slowlog().lock().unwrap_or_else(PoisonError::into_inner).len()
}

/// Empties the slow/error log (tests).
pub fn slowlog_clear() {
    slowlog().lock().unwrap_or_else(PoisonError::into_inner).clear();
}

// ---------------------------------------------------------------------------
// Field names
// ---------------------------------------------------------------------------

/// Builds one `(field, value)` pair for rendering a digest or slow-log
/// entry to JSON. Every field name must be declared in
/// [`crate::names::FIELDS`]: `cqa-lint`'s `obs-name-registry` rule checks
/// call sites statically, and a debug assertion backs it at runtime.
pub fn digest_field(name: &'static str, value: Json) -> (&'static str, Json) {
    debug_assert!(
        crate::names::FIELDS.contains(&name),
        "flight-recorder field {name:?} missing from crates/obs/src/names.rs"
    );
    (name, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(id: &str, ts: u64) -> FlightDigest {
        FlightDigest {
            request_id: id.to_owned(),
            query_fingerprint: 0xfeed,
            scheme: "KLM",
            cache_hit: true,
            error: None,
            queue_wait_micros: 12,
            samples: 1800,
            variance: 0.25,
            ci_half_width: 0.011,
            preprocess_micros: 0,
            scheme_micros: 900,
            total_micros: 950,
            ts_micros: ts,
        }
    }

    /// The ring is process-global; exercise record/snapshot/clear/toggle
    /// from one test to avoid cross-test interference.
    #[test]
    fn digest_ring_roundtrip_wrap_and_toggle() {
        clear();
        record(&digest("client-abc", 10));
        record(&FlightDigest {
            error: Some("deadline_exceeded"),
            cache_hit: false,
            ..digest("srv-0000000000000001", 20)
        });
        let (got, dropped) = snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], digest("client-abc", 10));
        assert_eq!(got[1].error, Some("deadline_exceeded"));
        assert!(!got[1].cache_hit);

        // Long ids keep their first MAX_REQUEST_ID_BYTES bytes.
        let long = "x".repeat(MAX_REQUEST_ID_BYTES + 9);
        record(&digest(&long, 30));
        let (got, _) = snapshot();
        assert_eq!(got.last().unwrap().request_id, "x".repeat(MAX_REQUEST_ID_BYTES));

        // Wrap: capacity + extra records drop the oldest.
        clear();
        for i in 0..(DEFAULT_CAPACITY as u64 + 5) {
            record(&digest("wrap", i));
        }
        let (got, dropped) = snapshot();
        assert_eq!(got.len(), DEFAULT_CAPACITY);
        assert_eq!(dropped, 5);

        // Disabled ⇒ nothing records.
        clear();
        set_enabled(false);
        record(&digest("ignored", 1));
        assert!(snapshot().0.is_empty());
        set_enabled(true);
    }

    #[test]
    fn request_scope_carries_the_id_and_span_tree() {
        begin_request("req-77");
        assert_eq!(current_request_id(), "req-77");
        {
            let _g = crate::span("server/request");
        }
        end_request();
        assert_eq!(current_request_id(), "");
        let spans = take_request_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "server/request");
        assert!(take_request_spans().is_empty(), "taking the spans drains the buffer");
    }

    #[test]
    fn slowlog_is_bounded_and_ordered() {
        slowlog_clear();
        for i in 0..(SLOWLOG_CAPACITY as u64 + 3) {
            slowlog_record(SlowlogEntry {
                request_id: format!("slow-{i}"),
                error: None,
                total_micros: 1000 + i,
                ts_micros: i,
                spans: Vec::new(),
            });
        }
        let log = slowlog_snapshot();
        assert_eq!(log.len(), SLOWLOG_CAPACITY);
        assert_eq!(log.first().unwrap().request_id, "slow-3");
        assert_eq!(log.last().unwrap().request_id, format!("slow-{}", SLOWLOG_CAPACITY + 2));
        slowlog_clear();
        assert!(slowlog_snapshot().is_empty());
    }

    #[test]
    fn id_words_roundtrip() {
        for id in ["", "a", "exactly-8", "a-much-longer-request-id-string!"] {
            assert_eq!(id_string(id_words(id)), *id);
        }
    }

    #[test]
    fn digest_field_returns_the_pair() {
        let (k, v) = digest_field("request_id", Json::str("r-1"));
        assert_eq!(k, "request_id");
        assert_eq!(v.as_str(), Some("r-1"));
    }
}
