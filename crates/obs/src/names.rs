//! Central registry of every span and metric name in the workspace.
//!
//! Dashboards, trace post-processing, and the metrics exposition all key
//! on these literal strings; a name used at an instrumentation site but
//! absent here is almost always a typo, and it fails nowhere — the data
//! just silently lands under a label nothing reads. `cqa-lint`'s
//! `obs-name-registry` rule checks every span/metric literal in the
//! workspace against these arrays, so adding an instrumentation point
//! means adding its name here first (see `docs/ANALYSIS.md`).
//!
//! Naming scheme: spans are `area/operation` (slash-separated, the area
//! matching the crate or subsystem); metrics are `area_noun_unit`
//! (underscore-separated, Prometheus-style, `_total` for counters);
//! flight-recorder fields are `snake_case` JSON keys.

/// Every span name passed to [`crate::span`], [`crate::span_args`],
/// [`crate::record_span`], or [`crate::instant_args`].
pub const SPANS: &[&str] = &[
    // crates/server — request lifecycle
    "server/request",
    "server/queue_wait",
    "server/cache_lookup",
    "server/synopsis_build",
    "server/sampling",
    "server/debug_flight",
    "server/debug_slowlog",
    // crates/synopsis — preprocessing
    "synopsis/build",
    "synopsis/enumerate_homs",
    "synopsis/encode_groups",
    // crates/scenarios — benchmark harness
    "scenario/cell_noise",
    "scenario/cell_balance",
    "scenario/run_pair",
    "run/Natural",
    "run/KL",
    "run/KLM",
    "run/Cover",
    "driver/apx_cqa",
    // crates/core — sampling schemes and stopping rules
    "scheme/Natural",
    "scheme/KL",
    "scheme/KLM",
    "scheme/Cover",
    "dklr/stopping_rule",
    "dklr/variance_estimation",
    "dklr/planned",
    "core/coverage_loop",
    "core/mc_final_loop",
    "core/deadline_expired",
    "core/sample_cap_hit",
];

/// Every metric name registered with the global
/// [`crate::metrics::Registry`] (counters, gauges, and histograms).
pub const METRICS: &[&str] = &[
    // crates/server
    "server_requests_total",
    "server_queries_ok_total",
    "server_rejected_overloaded_total",
    "server_rejected_deadline_total",
    "server_rejected_bad_request_total",
    "server_errors_internal_total",
    "server_connections_total",
    "server_retried_requests_total",
    "server_query_latency",
    "server_queue_wait",
    "server_cache_hits_total",
    "server_cache_misses_total",
    "server_cache_canonical_rekeys_total",
    "server_cache_entries",
    "server_cache_evictions_total",
    // crates/server — flight recorder (per-request-derived)
    "server_slow_requests_total",
    "server_flight_dropped",
    "server_slowlog_entries",
    "server_last_request_samples",
    "server_last_request_ci_half_width_ppm",
    // crates/core
    "core_samples_total",
    "core_samples_rejected_total",
    "core_scheme_runs_total",
    "core_budget_exhausted_total",
];

/// Every flight-recorder digest / slow-log field name passed to
/// [`crate::flight::digest_field`] when rendering to the wire. Field names
/// are `snake_case` (they become JSON object keys in `debug flight` /
/// `debug slowlog` responses; see `docs/PROTOCOL.md`).
pub const FIELDS: &[&str] = &[
    // the per-request digest
    "request_id",
    "query_fp",
    "scheme",
    "cache_hit",
    "error",
    "queue_wait_us",
    "samples",
    "variance",
    "ci_half_width",
    "preprocess_us",
    "scheme_us",
    "total_us",
    "ts_us",
    // slow/error-log span rows
    "spans",
    "name",
    "depth",
    "dur_us",
    "self_us",
    "a0",
    "a1",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registries_have_no_duplicates() {
        let spans: BTreeSet<_> = SPANS.iter().collect();
        assert_eq!(spans.len(), SPANS.len(), "duplicate span name in registry");
        let metrics: BTreeSet<_> = METRICS.iter().collect();
        assert_eq!(metrics.len(), METRICS.len(), "duplicate metric name in registry");
        let fields: BTreeSet<_> = FIELDS.iter().collect();
        assert_eq!(fields.len(), FIELDS.len(), "duplicate field name in registry");
    }

    #[test]
    fn names_follow_the_scheme() {
        for s in SPANS {
            assert!(s.contains('/') && !s.contains(' '), "span {s:?} must be area/operation");
        }
        for m in METRICS {
            assert!(
                m.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "metric {m:?} must be snake_case"
            );
        }
        for f in FIELDS {
            assert!(
                f.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "field {f:?} must be snake_case"
            );
        }
    }
}
