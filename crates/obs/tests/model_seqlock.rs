//! Exhaustive interleaving checks for the trace ring's seqlock protocol.
//!
//! `cqa_obs::trace` publishes ring slots with a per-slot sequence word:
//! the writer stores an odd value, writes the payload fields, then stores
//! the next even value; a reader snapshots by reading the sequence, the
//! fields, and the sequence again, keeping the slot only if both reads saw
//! the same even, nonzero value. These tests model exactly that discipline
//! (compare `Slot::push`/`snapshot` in `crates/obs/src/trace.rs`) over
//! `loom` (the vendored interleaving explorer in `shims/loom`) and assert
//! that **no** sequentially-consistent interleaving lets a reader accept a
//! torn payload. A negative control drops the odd "writing" phase — the
//! shortcut a refactor might take — and asserts the explorer finds the
//! torn read it permits, which is the evidence that the passing tests
//! actually constrain the protocol.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One modeled ring slot: generation word plus a two-word payload whose
/// halves must always be observed together (the model writes `(v, v)`, so
/// a torn read is any snapshot with `a != b`).
struct Slot {
    seq: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot { seq: AtomicU64::new(0), a: AtomicU64::new(0), b: AtomicU64::new(0) }
    }

    /// The real protocol: odd marks "write in progress", even publishes.
    fn push(&self, generation: u64, value: u64) {
        self.seq.store(2 * generation - 1, Ordering::Release);
        self.a.store(value, Ordering::Relaxed);
        self.b.store(value, Ordering::Relaxed);
        self.seq.store(2 * generation, Ordering::Release);
    }

    /// The broken protocol the negative control exercises: payload first,
    /// no in-progress marker.
    fn push_unguarded(&self, generation: u64, value: u64) {
        self.a.store(value, Ordering::Relaxed);
        self.b.store(value, Ordering::Relaxed);
        self.seq.store(2 * generation, Ordering::Release);
    }

    /// One snapshot attempt, mirroring `snapshot()`: reject unpublished
    /// (zero), in-progress (odd), and concurrently-rewritten (sequence
    /// changed) slots.
    fn try_read(&self) -> Option<(u64, u64)> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 % 2 == 1 {
            return None;
        }
        let a = self.a.load(Ordering::Relaxed);
        let b = self.b.load(Ordering::Relaxed);
        let s2 = self.seq.load(Ordering::Acquire);
        if s1 != s2 {
            return None;
        }
        Some((a, b))
    }
}

/// A reader with bounded retries (exploration requires bounded loops; the
/// real `snapshot()` visits each slot once per call).
fn read_with_retries(slot: &Slot, attempts: usize) -> Option<(u64, u64)> {
    for _ in 0..attempts {
        if let Some(pair) = slot.try_read() {
            return Some(pair);
        }
    }
    None
}

/// A reader races a writer re-publishing a live slot. In every
/// interleaving the reader either skips the slot or sees one of the two
/// published payloads intact — never a mix.
#[test]
fn reader_never_accepts_a_torn_payload() {
    loom::model(|| {
        let slot = Arc::new(Slot::new());
        // Generation 1 is already published before the race begins, as in
        // a warm ring.
        slot.push(1, 10);
        let s2 = Arc::clone(&slot);
        let writer = loom::thread::spawn(move || {
            s2.push(2, 20); // wrap-around: overwrite the live slot
        });
        if let Some((a, b)) = read_with_retries(&slot, 2) {
            assert_eq!(a, b, "torn read: halves from different generations");
            assert!(a == 10 || a == 20, "payload from a generation never published");
        }
        writer.join().unwrap();
        // After the writer quiesces the slot must read clean.
        let (a, b) = slot.try_read().expect("published slot must be readable");
        assert_eq!((a, b), (20, 20));
    });
}

/// An in-progress write (odd sequence) is always skipped, so a reader can
/// never block on or observe a half-written slot even if the writer is
/// preempted mid-write forever.
#[test]
fn in_progress_slots_are_skipped() {
    loom::model(|| {
        let slot = Arc::new(Slot::new());
        let s2 = Arc::clone(&slot);
        let writer = loom::thread::spawn(move || {
            s2.push(1, 7);
        });
        // The slot starts unpublished; whatever the schedule does, each
        // attempt yields either nothing or the complete payload.
        if let Some((a, b)) = read_with_retries(&slot, 2) {
            assert_eq!((a, b), (7, 7));
        }
        writer.join().unwrap();
    });
}

/// Negative control: without the odd in-progress phase, some interleaving
/// hands the reader half of each generation under a stable even sequence.
/// The explorer must find it.
#[test]
fn unguarded_writer_torn_read_is_caught() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let slot = Arc::new(Slot::new());
            slot.push_unguarded(1, 10);
            let s2 = Arc::clone(&slot);
            let writer = loom::thread::spawn(move || {
                s2.push_unguarded(2, 20);
            });
            if let Some((a, b)) = read_with_retries(&slot, 2) {
                assert_eq!(a, b, "torn read admitted");
            }
            writer.join().unwrap();
        })
    }));
    let msg = match outcome {
        Ok(report) => panic!(
            "unguarded writer survived {} interleavings — the model is not exploring enough",
            report.iterations
        ),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".to_owned()),
    };
    assert!(msg.contains("torn read admitted"), "unexpected failure: {msg}");
}
