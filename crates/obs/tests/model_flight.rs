//! Exhaustive interleaving checks for the flight recorder's seqlock ring.
//!
//! `cqa_obs::flight` differs from the trace ring in one load-bearing way:
//! writers claim a monotonically increasing **ticket** with
//! `head.fetch_add`, and the slot's sequence word carries the ticket
//! (`2t+1` while writing, `2t+2` once published), so two requests whose
//! tickets wrap onto the same slot race as *writers* against each other
//! as well as against a concurrent `debug flight` reader. Unserialized
//! writers break the seqlock: the lap-behind writer can finish publishing
//! its *older* even sequence over the newer writer's payload, leaving a
//! torn digest that reads as valid (this model found that interleaving,
//! which is why `record` now claims the slot with a forward-only CAS and
//! drops the digest on contention). These tests model the claimed
//! discipline (compare `record`/`snapshot` in `crates/obs/src/flight.rs`)
//! over `loom` (the vendored interleaving explorer in `shims/loom`) and
//! assert that no sequentially-consistent interleaving lets a reader
//! accept — or the quiesced slot retain — a digest whose fields come
//! from two different requests. A negative control drops the claim and
//! the odd "writing" phase and asserts the explorer catches the torn
//! digest those shortcuts admit — the evidence the passing tests
//! actually constrain the protocol.
//!
//! Tickets are pre-assigned here rather than modeled: `head.fetch_add`
//! hands out distinct values by atomicity alone, and leaving it out of
//! the explored ops keeps the schedule space within exhaustive reach.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A capacity-1 model of the digest ring: one slot with a two-word
/// payload. The model writes `(v, v)`, so a torn digest is any accepted
/// snapshot with `a != b`.
struct Slot {
    seq: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot { seq: AtomicU64::new(0), a: AtomicU64::new(0), b: AtomicU64::new(0) }
    }

    /// The real protocol, `record()` in miniature: claim the slot with a
    /// forward-only CAS to the odd "writing" value (drop the digest if
    /// any other writer is in progress or a newer ticket got there
    /// first), write the payload, publish (even). Returns whether it
    /// published.
    fn record(&self, ticket: u64, value: u64) -> bool {
        let writing = 2 * ticket + 1;
        let cur = self.seq.load(Ordering::Acquire);
        if cur % 2 == 1
            || cur > writing
            || self.seq.compare_exchange(cur, writing, Ordering::AcqRel, Ordering::Relaxed).is_err()
        {
            return false;
        }
        self.a.store(value, Ordering::Relaxed);
        self.b.store(value, Ordering::Relaxed);
        self.seq.store(writing + 1, Ordering::Release);
        true
    }

    /// The broken protocol the negative control exercises: payload first,
    /// no claim, no in-progress marker.
    fn record_unguarded(&self, ticket: u64, value: u64) {
        self.a.store(value, Ordering::Relaxed);
        self.b.store(value, Ordering::Relaxed);
        self.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// One snapshot attempt, mirroring `snapshot()`: reject never-written
    /// (zero), in-progress (odd), and concurrently-rewritten (sequence
    /// changed) slots.
    fn try_read(&self) -> Option<(u64, u64)> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 % 2 == 1 {
            return None;
        }
        let a = self.a.load(Ordering::Relaxed);
        let b = self.b.load(Ordering::Relaxed);
        let s2 = self.seq.load(Ordering::Acquire);
        if s1 != s2 {
            return None;
        }
        Some((a, b))
    }
}

/// A reader with bounded retries (exploration needs bounded loops; the
/// real `snapshot()` visits each slot once per `debug flight`).
fn read_with_retries(slot: &Slot, attempts: usize) -> Option<(u64, u64)> {
    for _ in 0..attempts {
        if let Some(pair) = slot.try_read() {
            return Some(pair);
        }
    }
    None
}

/// Two wrapped writers race on one slot (the lap-behind scenario: tickets
/// a full ring apart). In every interleaving at least one publishes, and
/// the slot quiesces to one request's digest intact under an even
/// sequence — never fields from two requests. The unserialized protocol
/// fails exactly here: the older writer finishes publishing its even
/// sequence over the newer writer's payload.
#[test]
fn concurrent_writers_never_publish_a_torn_digest() {
    loom::model(|| {
        let slot = Arc::new(Slot::new());
        let s2 = Arc::clone(&slot);
        let newer = loom::thread::spawn(move || s2.record(1, 20));
        let older_published = slot.record(0, 10);
        let newer_published = newer.join().unwrap();
        assert!(
            older_published || newer_published,
            "contention must drop at most one digest, never both"
        );
        let (a, b) = slot.try_read().expect("published slot must be readable");
        assert_eq!(a, b, "torn digest survived quiescence");
        assert!(a == 10 || a == 20);
    });
}

/// A `debug flight` reader races a writer re-claiming a live slot (the
/// next lap overwriting a published digest). The reader either skips the
/// slot or sees one of the two published digests intact — never a mix.
#[test]
fn reader_never_accepts_a_torn_digest() {
    loom::model(|| {
        let slot = Arc::new(Slot::new());
        // Ticket 0 is already published before the race begins, as in a
        // warm ring.
        assert!(slot.record(0, 10));
        let s2 = Arc::clone(&slot);
        let writer = loom::thread::spawn(move || s2.record(1, 20));
        if let Some((a, b)) = read_with_retries(&slot, 2) {
            assert_eq!(a, b, "torn read: fields from different requests");
            assert!(a == 10 || a == 20, "digest from a request never published");
        }
        assert!(writer.join().unwrap(), "an uncontended writer always publishes");
        let (a, b) = slot.try_read().expect("published slot must be readable");
        assert_eq!((a, b), (20, 20));
    });
}

/// A writer preempted mid-write (odd sequence) is always skipped: the
/// reader never observes a half-written digest and never blocks, even if
/// the writer stalls forever.
#[test]
fn in_progress_digests_are_skipped() {
    loom::model(|| {
        let slot = Arc::new(Slot::new());
        let s2 = Arc::clone(&slot);
        let writer = loom::thread::spawn(move || s2.record(0, 7));
        if let Some((a, b)) = read_with_retries(&slot, 2) {
            assert_eq!((a, b), (7, 7));
        }
        writer.join().unwrap();
    });
}

/// Negative control: without the claim and the odd in-progress phase,
/// some interleaving of two wrapped writers leaves half of each request's
/// digest under a stable even sequence. The explorer must find it.
#[test]
fn unguarded_writer_torn_digest_is_caught() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let slot = Arc::new(Slot::new());
            let s2 = Arc::clone(&slot);
            let newer = loom::thread::spawn(move || s2.record_unguarded(1, 20));
            slot.record_unguarded(0, 10);
            newer.join().unwrap();
            if let Some((a, b)) = slot.try_read() {
                assert_eq!(a, b, "torn digest admitted");
            }
        })
    }));
    let msg = match outcome {
        Ok(report) => panic!(
            "unguarded writer survived {} interleavings — the model is not exploring enough",
            report.iterations
        ),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".to_owned()),
    };
    assert!(msg.contains("torn digest admitted"), "unexpected failure: {msg}");
}
