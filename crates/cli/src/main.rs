//! `cqa-cli` entry point.

#![forbid(unsafe_code)]

use cqa_cli::{execute, parse_args};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cqa_cli::args::USAGE);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = execute(cmd, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
