//! Command execution.

use crate::args::{Command, USAGE};
use cqa_common::{Mt64, Result};
use cqa_core::{apx_cqa_on_synopses, apx_cqa_parallel, Budget, Scheme};
use cqa_noise::{add_query_aware_noise, NoiseSpec};
use cqa_query::parse;
use cqa_repair::consistent_answers_exact;
use cqa_server::{run_chaos, run_load, ChaosSpec, LoadSpec, Server, ServerConfig};
use cqa_storage::{dump_to_file, is_consistent, load_from_file, schema_to_ddl, Database};
use cqa_synopsis::{build_synopses, BuildOptions, SynopsisStats};
use std::io::Write;

/// Executes one parsed command, writing human-readable output to `out`.
pub fn execute(cmd: Command, out: &mut dyn Write) -> Result<()> {
    let w = |out: &mut dyn Write, s: String| {
        out.write_all(s.as_bytes()).expect("write to output");
        out.write_all(b"\n").expect("write to output");
    };
    match cmd {
        Command::Help => w(out, USAGE.to_owned()),
        Command::Generate { bench, scale, seed, out: path } => {
            let db: Database = match bench.as_str() {
                "tpch" => cqa_tpch::generate(cqa_tpch::TpchConfig { scale, seed }),
                _ => cqa_tpcds::generate(cqa_tpcds::TpcdsConfig { scale, seed }),
            };
            dump_to_file(&db, &path)?;
            w(
                out,
                format!(
                    "generated {bench} at scale {scale}: {} facts over {} relations -> {}",
                    db.fact_count(),
                    db.schema().len(),
                    path.display()
                ),
            );
        }
        Command::Noise { db, query, p, lmin, umax, seed, out: path } => {
            let base = load_from_file(&db)?;
            let q = parse(base.schema(), &query)?;
            let mut rng = Mt64::new(seed);
            let (noisy, report) =
                add_query_aware_noise(&base, &q, NoiseSpec { p, lmin, umax }, &mut rng)?;
            dump_to_file(&noisy, &path)?;
            for (name, relevant, selected, added) in &report.per_relation {
                w(
                    out,
                    format!("  {name}: {relevant} relevant, {selected} selected, {added} added"),
                );
            }
            w(
                out,
                format!(
                    "added {} facts; database now has {} facts (consistent: {}) -> {}",
                    report.total_added,
                    noisy.fact_count(),
                    is_consistent(&noisy),
                    path.display()
                ),
            );
        }
        Command::Query {
            db,
            query,
            scheme,
            eps,
            delta,
            timeout,
            seed,
            threads,
            trace,
            profile,
        } => {
            let tracing = trace.is_some() || profile;
            if tracing {
                cqa_obs::trace::clear();
                cqa_obs::set_enabled(true);
            }
            let database = load_from_file(&db)?;
            let q = parse(database.schema(), &query)?;
            let budget = match timeout {
                Some(t) => Budget::with_timeout_secs(t),
                None => Budget::unbounded(),
            };
            let syn = build_synopses(&database, &q, BuildOptions::default())?;
            let stats = SynopsisStats::of(&syn);
            w(
                out,
                format!(
                    "preprocessing: {} answers, {} images, balance {:.2}, {:.3}s",
                    stats.output_size, stats.hom_size, stats.balance, stats.build_secs
                ),
            );
            let res = if threads > 1 {
                apx_cqa_parallel(&syn, scheme, eps, delta, &budget, seed, threads)?
            } else {
                let mut rng = Mt64::new(seed);
                apx_cqa_on_synopses(&syn, scheme, eps, delta, &budget, &mut rng)?
            };
            let mut ranked = res.answers;
            ranked.sort_by(|a, b| {
                b.frequency.partial_cmp(&a.frequency).expect("finite").then(a.tuple.cmp(&b.tuple))
            });
            for te in &ranked {
                w(
                    out,
                    format!(
                        "  {:<40} {:>7.2}%",
                        database.fmt_tuple(&te.tuple),
                        te.frequency * 100.0
                    ),
                );
            }
            w(
                out,
                format!(
                    "{} answers via {} in {:?} ({} samples)",
                    ranked.len(),
                    scheme.name(),
                    res.scheme_time,
                    res.total_samples
                ),
            );
            if tracing {
                cqa_obs::set_enabled(false);
                if let Some(path) = &trace {
                    let n = cqa_obs::write_chrome_trace(path).map_err(|e| {
                        cqa_common::CqaError::InvalidParameter(format!(
                            "--trace {}: {e}",
                            path.display()
                        ))
                    })?;
                    w(out, format!("trace: {n} events -> {}", path.display()));
                }
                if profile {
                    w(out, cqa_obs::flat_profile_string());
                }
            }
        }
        Command::Exact { db, query, limit } => {
            let database = load_from_file(&db)?;
            let q = parse(database.schema(), &query)?;
            let answers = consistent_answers_exact(&database, &q, limit)?;
            for (t, f) in &answers {
                w(out, format!("  {:<40} {:>7.2}%", database.fmt_tuple(t), f * 100.0));
            }
            w(out, format!("{} answers (exact, by repair enumeration)", answers.len()));
        }
        Command::Stats { db, query } => {
            let database = load_from_file(&db)?;
            let q = parse(database.schema(), &query)?;
            let syn = build_synopses(&database, &q, BuildOptions::default())?;
            let stats = SynopsisStats::of(&syn);
            w(out, format!("query:            {}", q.display(database.schema())));
            w(out, format!("joins:            {}", q.join_count()));
            w(out, format!("output size:      {}", stats.output_size));
            w(out, format!("homomorphic size: {}", stats.hom_size));
            w(out, format!("balance:          {:.3}", stats.balance));
            w(out, format!("max |H|:          {}", stats.max_images));
            w(out, format!("max |db(B)|:      10^{:.1}", stats.max_log10_db_b));
            w(out, format!("preprocessing:    {:.3}s", stats.build_secs));
            let pick: Scheme = if stats.balance < 0.05 { Scheme::Natural } else { Scheme::Klm };
            w(
                out,
                format!("recommended scheme (per the paper's §7.2 decision rule): {}", pick.name()),
            );
        }
        Command::Certain { db, query } => {
            let database = load_from_file(&db)?;
            let q = parse(database.schema(), &query)?;
            let certain = cqa_synopsis::certain_answers(&database, &q)?;
            for t in &certain {
                w(out, format!("  {}", database.fmt_tuple(t)));
            }
            w(out, format!("{} certain answers (true in every repair)", certain.len()));
        }
        Command::Schema { db } => {
            let database = load_from_file(&db)?;
            w(out, schema_to_ddl(database.schema()));
            w(
                out,
                format!(
                    "{} facts, consistent: {}, repairs: {}",
                    database.fact_count(),
                    is_consistent(&database),
                    database.repair_count()
                ),
            );
        }
        Command::Serve { db, addr, workers, queue_depth, cache_capacity, timeout_ms, trace } => {
            if trace {
                cqa_obs::set_enabled(true);
            }
            let database = load_from_file(&db)?;
            let server = Server::bind(
                database,
                ServerConfig {
                    addr,
                    workers,
                    queue_depth,
                    cache_capacity,
                    default_timeout_ms: timeout_ms,
                    max_samples: u64::MAX,
                    slow_threshold_ms: ServerConfig::default().slow_threshold_ms,
                },
            )
            .map_err(|e| cqa_common::CqaError::InvalidParameter(format!("bind: {e}")))?;
            let bound = server
                .local_addr()
                .map_err(|e| cqa_common::CqaError::InvalidParameter(format!("bind: {e}")))?;
            let trace_note = if trace { ", tracing on" } else { "" };
            w(out, format!("cqa-server listening on {bound} (protocol v1, NDJSON{trace_note})"));
            server.run();
        }
        Command::BenchServe {
            addr,
            query,
            scheme,
            eps,
            delta,
            clients,
            requests,
            seed,
            timeout_ms,
            permute,
        } => {
            let report = run_load(&LoadSpec {
                addr,
                query,
                scheme,
                eps,
                delta,
                clients,
                requests,
                seed,
                timeout_ms,
                permute,
            })?;
            w(out, report.render());
        }
        Command::Chaos {
            db,
            query,
            scheme,
            eps,
            delta,
            plan,
            seed,
            clients,
            requests,
            workers,
        } => {
            let database = load_from_file(&db)?;
            let fault_plan = cqa_chaos::FaultPlan::preset(&plan, seed).ok_or_else(|| {
                cqa_common::CqaError::InvalidParameter(format!(
                    "unknown fault plan '{plan}' (expected one of: {})",
                    cqa_chaos::PRESETS.join(", ")
                ))
            })?;
            let mut spec = ChaosSpec::new(&query, fault_plan);
            spec.scheme = scheme;
            spec.eps = eps;
            spec.delta = delta;
            spec.seed = seed;
            spec.clients = clients;
            spec.requests = requests;
            spec.workers = workers;
            let report = run_chaos(database, &spec)?;
            w(out, report.render());
            if !report.passed() {
                return Err(cqa_common::CqaError::InvalidParameter(format!(
                    "chaos run violated {} reliability invariant(s)",
                    report.violations.len()
                )));
            }
        }
        Command::Debug { addr, target } => {
            let mut client = cqa_server::Client::connect(&addr)?;
            let request = cqa_server::Request::Debug {
                target: match target.as_str() {
                    "flight" => cqa_server::DebugTarget::Flight,
                    _ => cqa_server::DebugTarget::Slowlog,
                },
            };
            // Print the response verbatim: one JSON object, pipeable to jq.
            let response = client.roundtrip(&request)?;
            if let cqa_server::Response::Error { kind, message } = &response {
                return Err(cqa_common::CqaError::InvalidParameter(format!(
                    "debug {target} failed: {} ({message})",
                    kind.name()
                )));
            }
            w(out, response.to_line());
        }
        Command::Perf { args } => {
            let code = cqa_perf::cli::dispatch(&args, out)?;
            if code != 0 {
                return Err(cqa_common::CqaError::InvalidParameter(format!(
                    "perf gate failed (exit {code})"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn run(cmd: Command) -> Result<String> {
        let mut buf = Vec::new();
        execute(cmd, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cqa_cli_{name}_{}", std::process::id()))
    }

    #[test]
    fn end_to_end_generate_noise_query_exact() {
        let base = tmp("base.db");
        let noisy = tmp("noisy.db");
        // A region-only query keeps the noisy instance's repair count tiny
        // (≤ 2⁵) so the `exact` command stays debug-build fast.
        let query = "Q(rn) :- region(rk, rn)".to_owned();

        let out = run(Command::Generate {
            bench: "tpch".into(),
            scale: 0.0003,
            seed: 5,
            out: base.clone(),
        })
        .unwrap();
        assert!(out.contains("generated tpch"));

        let out = run(Command::Noise {
            db: base.clone(),
            query: query.clone(),
            p: 1.0,
            lmin: 2,
            umax: 2,
            seed: 5,
            out: noisy.clone(),
        })
        .unwrap();
        assert!(out.contains("consistent: false"));

        let out = run(Command::Stats { db: noisy.clone(), query: query.clone() }).unwrap();
        assert!(out.contains("balance"));
        assert!(out.contains("recommended scheme"));

        let approx = run(Command::Query {
            db: noisy.clone(),
            query: query.clone(),
            scheme: Scheme::Klm,
            eps: 0.1,
            delta: 0.25,
            timeout: None,
            seed: 1,
            threads: 2,
            trace: None,
            profile: false,
        })
        .unwrap();
        assert!(approx.contains('%'));

        let exact = run(Command::Exact { db: noisy.clone(), query, limit: 10_000_000 }).unwrap();
        assert!(exact.contains("exact"));

        // The two answer sets agree in size.
        let count = |s: &str| s.lines().filter(|l| l.contains('%')).count();
        assert_eq!(count(&approx), count(&exact));

        std::fs::remove_file(base).ok();
        std::fs::remove_file(noisy).ok();
    }

    #[test]
    fn certain_command_lists_certain_tuples() {
        let base = tmp("certain.db");
        run(Command::Generate { bench: "tpch".into(), scale: 0.0003, seed: 9, out: base.clone() })
            .unwrap();
        // On a consistent database, every answer is certain.
        let out =
            run(Command::Certain { db: base.clone(), query: "Q(rn) :- region(rk, rn)".into() })
                .unwrap();
        assert!(out.contains("5 certain answers"));
        std::fs::remove_file(base).ok();
    }

    #[test]
    fn schema_command_prints_ddl() {
        let base = tmp("schema.db");
        run(Command::Generate { bench: "tpcds".into(), scale: 0.0002, seed: 1, out: base.clone() })
            .unwrap();
        let out = run(Command::Schema { db: base.clone() }).unwrap();
        assert!(out.contains("relation store_sales"));
        assert!(out.contains("key 2"));
        std::fs::remove_file(base).ok();
    }

    #[test]
    fn bench_serve_reports_throughput_and_percentiles() {
        let base = tmp("serve.db");
        run(Command::Generate { bench: "tpch".into(), scale: 0.0003, seed: 3, out: base.clone() })
            .unwrap();
        let database = cqa_storage::load_from_file(&base).unwrap();
        let server = Server::bind(
            database,
            ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServerConfig::default() },
        )
        .unwrap();
        let mut handle = server.spawn().unwrap();
        let report = run_load(&LoadSpec {
            addr: handle.addr().to_string(),
            query: "Q(rn) :- region(rk, rn)".into(),
            scheme: Scheme::Klm,
            eps: 0.2,
            delta: 0.25,
            clients: 2,
            requests: 5,
            seed: 11,
            timeout_ms: None,
            permute: false,
        })
        .unwrap()
        .render();
        assert!(report.contains("10 requests over 2 clients"), "{report}");
        assert!(report.contains("ok 10"), "{report}");
        assert!(report.contains("cache hit rate"), "{report}");
        assert!(report.contains("p99"), "{report}");
        handle.shutdown();
        std::fs::remove_file(base).ok();
    }

    #[test]
    fn query_writes_trace_and_prints_profile() {
        let base = tmp("trace.db");
        let trace_path = tmp("trace.json");
        run(Command::Generate { bench: "tpch".into(), scale: 0.0003, seed: 4, out: base.clone() })
            .unwrap();
        let out = run(Command::Query {
            db: base.clone(),
            query: "Q(rn) :- region(rk, rn)".into(),
            scheme: Scheme::Klm,
            eps: 0.2,
            delta: 0.25,
            timeout: None,
            seed: 1,
            threads: 1,
            trace: Some(trace_path.clone()),
            profile: true,
        })
        .unwrap();
        assert!(out.contains("trace:"), "{out}");
        assert!(out.contains("flat profile"), "{out}");
        assert!(out.contains("scheme/KLM"), "{out}");
        let text = std::fs::read_to_string(&trace_path).unwrap();
        match cqa_common::Json::parse(text.trim()).unwrap() {
            cqa_common::Json::Arr(events) => {
                assert!(!events.is_empty(), "trace file has no events")
            }
            other => panic!("trace file is not a JSON array: {other:?}"),
        }
        std::fs::remove_file(base).ok();
        std::fs::remove_file(trace_path).ok();
    }

    #[test]
    fn help_flows_through() {
        let out = run(parse_args(&[]).unwrap()).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(Command::Schema { db: "/nonexistent/x.db".into() });
        assert!(err.is_err());
    }
}
