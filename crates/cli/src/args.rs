//! Command-line argument parsing (hand-rolled, dependency-free).

use cqa_common::{CqaError, Result};
use cqa_core::Scheme;
use std::collections::HashMap;
use std::path::PathBuf;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a benchmark database and dump it.
    Generate {
        /// `tpch` or `tpcds`.
        bench: String,
        /// Scale factor.
        scale: f64,
        /// RNG seed.
        seed: u64,
        /// Output dump path.
        out: PathBuf,
    },
    /// Inject query-aware noise into a dumped database.
    Noise {
        /// Input dump path.
        db: PathBuf,
        /// The target query (datalog syntax).
        query: String,
        /// Noise percentage `p`.
        p: f64,
        /// Minimum block size `ℓ`.
        lmin: u32,
        /// Maximum block size `u`.
        umax: u32,
        /// RNG seed.
        seed: u64,
        /// Output dump path.
        out: PathBuf,
    },
    /// Run approximate CQA.
    Query {
        /// Input dump path.
        db: PathBuf,
        /// The query (datalog syntax).
        query: String,
        /// Which approximation scheme.
        scheme: Scheme,
        /// Relative error ε.
        eps: f64,
        /// Uncertainty δ.
        delta: f64,
        /// Optional wall-clock budget in seconds.
        timeout: Option<f64>,
        /// RNG seed.
        seed: u64,
        /// Worker threads (>1 uses the parallel driver).
        threads: usize,
        /// Write a Chrome `trace_event` JSON file of the run here.
        trace: Option<PathBuf>,
        /// Print a flat per-span profile after the run.
        profile: bool,
    },
    /// Run exact CQA by repair enumeration (small inputs).
    Exact {
        /// Input dump path.
        db: PathBuf,
        /// The query (datalog syntax).
        query: String,
        /// Repair-count cap for the brute force.
        limit: u128,
    },
    /// Print synopsis statistics and a scheme recommendation.
    Stats {
        /// Input dump path.
        db: PathBuf,
        /// The query (datalog syntax).
        query: String,
    },
    /// List the certain answers (true in every repair).
    Certain {
        /// Input dump path.
        db: PathBuf,
        /// The query (datalog syntax).
        query: String,
    },
    /// Print the schema of a dump as DDL.
    Schema {
        /// Input dump path.
        db: PathBuf,
    },
    /// Run the approximate-CQA daemon.
    Serve {
        /// Input dump path.
        db: PathBuf,
        /// Address to bind (port 0 picks a free port).
        addr: String,
        /// Worker threads (0 = one per CPU).
        workers: usize,
        /// Admission-queue depth.
        queue_depth: usize,
        /// Synopsis-cache capacity (entries).
        cache_capacity: usize,
        /// Default per-request deadline in ms (None = unbounded).
        timeout_ms: Option<u64>,
        /// Enable tracing so the `trace` protocol command returns events.
        trace: bool,
    },
    /// Closed-loop load generator against a running daemon.
    BenchServe {
        /// Server address.
        addr: String,
        /// The query (datalog syntax).
        query: String,
        /// Which approximation scheme.
        scheme: Scheme,
        /// Relative error ε.
        eps: f64,
        /// Uncertainty δ.
        delta: f64,
        /// Concurrent client connections.
        clients: usize,
        /// Requests per client.
        requests: usize,
        /// Base RNG seed (request i of client c uses a distinct derived
        /// seed).
        seed: u64,
        /// Per-request deadline in ms (None = server default).
        timeout_ms: Option<u64>,
        /// Rewrite each issued query with shuffled atom order and fresh
        /// variable names (α-equivalent, different text).
        permute: bool,
    },
    /// Deterministic fault-injection run against an in-process daemon.
    Chaos {
        /// Input dump path.
        db: PathBuf,
        /// The query (datalog syntax).
        query: String,
        /// Which approximation scheme.
        scheme: Scheme,
        /// Relative error ε.
        eps: f64,
        /// Uncertainty δ.
        delta: f64,
        /// Fault-plan preset name (see `cqa_chaos::PRESETS`).
        plan: String,
        /// Seed for the plan's fire decisions, per-request seeds, and
        /// retry jitter.
        seed: u64,
        /// Concurrent storm clients.
        clients: usize,
        /// Requests per client.
        requests: usize,
        /// Server worker threads (0 = one per CPU).
        workers: usize,
    },
    /// Dump a running daemon's flight recorder or slow/error log.
    Debug {
        /// Server address.
        addr: String,
        /// `flight` or `slowlog`.
        target: String,
    },
    /// Continuous benchmarking: delegates to `cqa-perf` (run/diff/export).
    Perf {
        /// Raw arguments, parsed by `cqa_perf::cli::dispatch`.
        args: Vec<String>,
    },
    /// Print usage.
    Help,
}

/// The usage text.
pub const USAGE: &str = "\
cqa-cli — approximate consistent query answering

USAGE:
  cqa-cli generate <tpch|tpcds> [--scale F] [--seed N] --out FILE
  cqa-cli noise  --db FILE --query CQ [--p F] [--lmin N] [--umax N] [--seed N] --out FILE
  cqa-cli query  --db FILE --query CQ [--scheme natural|kl|klm|cover]
                 [--eps F] [--delta F] [--timeout SECS] [--seed N] [--threads N]
                 [--trace FILE] [--profile]
  cqa-cli exact  --db FILE --query CQ [--limit N]
  cqa-cli stats  --db FILE --query CQ
  cqa-cli certain --db FILE --query CQ
  cqa-cli schema --db FILE
  cqa-cli serve  --db FILE [--addr HOST:PORT] [--workers N] [--queue N]
                 [--cache N] [--timeout-ms N] [--trace]
  cqa-cli bench-serve --addr HOST:PORT --query CQ [--scheme S] [--eps F]
                 [--delta F] [--clients N] [--requests N] [--seed N]
                 [--timeout-ms N] [--permute-queries]
  cqa-cli chaos  --db FILE --query CQ [--plan NAME] [--seed N] [--scheme S]
                 [--eps F] [--delta F] [--clients N] [--requests N]
                 [--workers N]   (fault-injection run; plans: all-points-delay,
                 all-points-error, short-write, smoke, worker-panic)
  cqa-cli debug  <flight|slowlog> --addr HOST:PORT   (dump the daemon's
                 flight recorder / slow-error log as JSON)
  cqa-cli perf   <run|diff|export|help> [options]   (continuous benchmarking;
                 'cqa-cli perf help' prints the cqa-perf usage)

Queries use the datalog-style syntax, e.g. 'Q(n) :- employee(x, n, d)'.
`serve` speaks line-delimited JSON; see the README's Serving section.
";

struct Flags {
    map: HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags> {
        Flags::parse_with_switches(args, &[])
    }

    /// Parses `--key value` pairs, treating any key in `switch_names` as a
    /// valueless boolean switch.
    fn parse_with_switches(args: &[String], switch_names: &[&str]) -> Result<Flags> {
        let mut map = HashMap::new();
        let mut switches = std::collections::HashSet::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| CqaError::InvalidParameter(format!("unexpected argument '{a}'")))?;
            if switch_names.contains(&key) {
                if !switches.insert(key.to_owned()) {
                    return Err(CqaError::InvalidParameter(format!("--{key} given twice")));
                }
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| CqaError::InvalidParameter(format!("--{key} needs a value")))?;
            if map.insert(key.to_owned(), value.clone()).is_some() {
                return Err(CqaError::InvalidParameter(format!("--{key} given twice")));
            }
        }
        Ok(Flags { map, switches })
    }

    fn take<T: std::str::FromStr>(&mut self, key: &str, default: Option<T>) -> Result<T> {
        match self.map.remove(key) {
            Some(v) => v
                .parse()
                .map_err(|_| CqaError::InvalidParameter(format!("--{key}: cannot parse '{v}'"))),
            None => {
                default.ok_or_else(|| CqaError::InvalidParameter(format!("--{key} is required")))
            }
        }
    }

    /// Takes an optional valued flag; absent means `None`.
    fn take_opt<T: std::str::FromStr>(&mut self, key: &str) -> Result<Option<T>> {
        match self.map.remove(key) {
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CqaError::InvalidParameter(format!("--{key}: cannot parse '{v}'"))),
            None => Ok(None),
        }
    }

    /// Consumes a boolean switch, returning whether it was given.
    fn has(&mut self, key: &str) -> bool {
        self.switches.remove(key)
    }

    fn finish(self) -> Result<()> {
        if let Some(key) = self.map.keys().chain(self.switches.iter()).next() {
            return Err(CqaError::InvalidParameter(format!("unknown flag --{key}")));
        }
        Ok(())
    }
}

fn parse_scheme(name: &str) -> Result<Scheme> {
    // `Scheme` implements `FromStr` (shared with the server protocol).
    name.parse()
}

/// Parses the arguments after the program name.
pub fn parse_args(args: &[String]) -> Result<Command> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let bench = args
                .get(1)
                .filter(|b| *b == "tpch" || *b == "tpcds")
                .ok_or_else(|| {
                    CqaError::InvalidParameter("generate needs 'tpch' or 'tpcds'".into())
                })?
                .clone();
            let mut f = Flags::parse(&args[2..])?;
            let out = Command::Generate {
                bench,
                scale: f.take("scale", Some(0.001))?,
                seed: f.take("seed", Some(42))?,
                out: f.take::<String>("out", None)?.into(),
            };
            f.finish()?;
            Ok(out)
        }
        "noise" => {
            let mut f = Flags::parse(&args[1..])?;
            let out = Command::Noise {
                db: f.take::<String>("db", None)?.into(),
                query: f.take("query", None)?,
                p: f.take("p", Some(0.5))?,
                lmin: f.take("lmin", Some(2))?,
                umax: f.take("umax", Some(5))?,
                seed: f.take("seed", Some(42))?,
                out: f.take::<String>("out", None)?.into(),
            };
            f.finish()?;
            Ok(out)
        }
        "query" => {
            let mut f = Flags::parse_with_switches(&args[1..], &["profile"])?;
            let scheme = parse_scheme(&f.take::<String>("scheme", Some("klm".into()))?)?;
            let out = Command::Query {
                db: f.take::<String>("db", None)?.into(),
                query: f.take("query", None)?,
                scheme,
                eps: f.take("eps", Some(0.1))?,
                delta: f.take("delta", Some(0.25))?,
                timeout: f.take("timeout", Some(-1.0)).map(|t: f64| (t > 0.0).then_some(t))?,
                seed: f.take("seed", Some(42))?,
                threads: f.take("threads", Some(1))?,
                trace: f.take_opt::<String>("trace")?.map(PathBuf::from),
                profile: f.has("profile"),
            };
            f.finish()?;
            Ok(out)
        }
        "exact" => {
            let mut f = Flags::parse(&args[1..])?;
            let out = Command::Exact {
                db: f.take::<String>("db", None)?.into(),
                query: f.take("query", None)?,
                limit: f.take("limit", Some(1_000_000u128))?,
            };
            f.finish()?;
            Ok(out)
        }
        "stats" => {
            let mut f = Flags::parse(&args[1..])?;
            let out = Command::Stats {
                db: f.take::<String>("db", None)?.into(),
                query: f.take("query", None)?,
            };
            f.finish()?;
            Ok(out)
        }
        "certain" => {
            let mut f = Flags::parse(&args[1..])?;
            let out = Command::Certain {
                db: f.take::<String>("db", None)?.into(),
                query: f.take("query", None)?,
            };
            f.finish()?;
            Ok(out)
        }
        "schema" => {
            let mut f = Flags::parse(&args[1..])?;
            let out = Command::Schema { db: f.take::<String>("db", None)?.into() };
            f.finish()?;
            Ok(out)
        }
        "serve" => {
            let mut f = Flags::parse_with_switches(&args[1..], &["trace"])?;
            let out = Command::Serve {
                db: f.take::<String>("db", None)?.into(),
                addr: f.take("addr", Some("127.0.0.1:7171".to_owned()))?,
                workers: f.take("workers", Some(0))?,
                queue_depth: f.take("queue", Some(64))?,
                cache_capacity: f.take("cache", Some(128))?,
                timeout_ms: f.take("timeout-ms", Some(30_000u64)).map(|t| (t > 0).then_some(t))?,
                trace: f.has("trace"),
            };
            f.finish()?;
            Ok(out)
        }
        "bench-serve" => {
            let mut f = Flags::parse_with_switches(&args[1..], &["permute-queries"])?;
            let scheme = parse_scheme(&f.take::<String>("scheme", Some("klm".into()))?)?;
            let out = Command::BenchServe {
                addr: f.take("addr", None)?,
                query: f.take("query", None)?,
                scheme,
                eps: f.take("eps", Some(0.1))?,
                delta: f.take("delta", Some(0.25))?,
                clients: f.take("clients", Some(4))?,
                requests: f.take("requests", Some(100))?,
                seed: f.take("seed", Some(42))?,
                timeout_ms: f.take("timeout-ms", Some(0u64)).map(|t| (t > 0).then_some(t))?,
                permute: f.has("permute-queries"),
            };
            f.finish()?;
            Ok(out)
        }
        "chaos" => {
            let mut f = Flags::parse(&args[1..])?;
            let scheme = parse_scheme(&f.take::<String>("scheme", Some("klm".into()))?)?;
            let out = Command::Chaos {
                db: f.take::<String>("db", None)?.into(),
                query: f.take("query", None)?,
                scheme,
                eps: f.take("eps", Some(0.2))?,
                delta: f.take("delta", Some(0.25))?,
                plan: f.take("plan", Some("smoke".to_owned()))?,
                seed: f.take("seed", Some(42))?,
                clients: f.take("clients", Some(2))?,
                requests: f.take("requests", Some(16))?,
                workers: f.take("workers", Some(2))?,
            };
            f.finish()?;
            Ok(out)
        }
        "debug" => {
            let target = args
                .get(1)
                .filter(|t| *t == "flight" || *t == "slowlog")
                .ok_or_else(|| {
                    CqaError::InvalidParameter("debug needs 'flight' or 'slowlog'".into())
                })?
                .clone();
            let mut f = Flags::parse(&args[2..])?;
            let out = Command::Debug { addr: f.take("addr", None)?, target };
            f.finish()?;
            Ok(out)
        }
        "perf" => Ok(Command::Perf { args: args[1..].to_vec() }),
        other => Err(CqaError::InvalidParameter(format!("unknown command '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_generate() {
        let c = parse_args(&argv("generate tpch --scale 0.01 --seed 7 --out wh.db")).unwrap();
        assert_eq!(
            c,
            Command::Generate { bench: "tpch".into(), scale: 0.01, seed: 7, out: "wh.db".into() }
        );
    }

    #[test]
    fn generate_defaults_apply() {
        let c = parse_args(&argv("generate tpcds --out x.db")).unwrap();
        match c {
            Command::Generate { bench, scale, seed, .. } => {
                assert_eq!(bench, "tpcds");
                assert_eq!(scale, 0.001);
                assert_eq!(seed, 42);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parses_query_with_scheme() {
        let mut a = argv("query --db x.db --scheme natural --eps 0.2");
        a.extend(["--query".to_owned(), "Q(n) :- r(n)".to_owned()]);
        let c = parse_args(&a).unwrap();
        match c {
            Command::Query { scheme, eps, delta, timeout, threads, trace, profile, .. } => {
                assert_eq!(scheme, Scheme::Natural);
                assert_eq!(eps, 0.2);
                assert_eq!(delta, 0.25);
                assert_eq!(timeout, None);
                assert_eq!(threads, 1);
                assert_eq!(trace, None);
                assert!(!profile);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parses_query_trace_and_profile() {
        let mut a = argv("query --db x.db --trace out.json --profile");
        a.extend(["--query".to_owned(), "Q(n) :- r(n)".to_owned()]);
        match parse_args(&a).unwrap() {
            Command::Query { trace, profile, .. } => {
                assert_eq!(trace, Some("out.json".into()));
                assert!(profile);
            }
            _ => panic!("wrong command"),
        }
        // --profile is a switch: it must not swallow the next flag.
        let mut b = argv("query --db x.db --profile --seed 7");
        b.extend(["--query".to_owned(), "Q(n) :- r(n)".to_owned()]);
        match parse_args(&b).unwrap() {
            Command::Query { profile, seed, .. } => {
                assert!(profile);
                assert_eq!(seed, 7);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn timeout_flag_is_optional_and_positive() {
        let mut a = argv("query --db x.db --timeout 5");
        a.extend(["--query".to_owned(), "Q() :- r(n)".to_owned()]);
        match parse_args(&a).unwrap() {
            Command::Query { timeout, .. } => assert_eq!(timeout, Some(5.0)),
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn missing_required_flag_errors() {
        assert!(parse_args(&argv("noise --db x.db --out y.db")).is_err()); // no --query
        assert!(parse_args(&argv("generate tpch")).is_err()); // no --out
    }

    #[test]
    fn unknown_flags_and_commands_error() {
        assert!(parse_args(&argv("schema --db x.db --bogus 1")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("generate oracle --out x.db")).is_err());
        assert!(parse_args(&argv("query --db")).is_err()); // dangling value
    }

    #[test]
    fn duplicate_flag_errors() {
        assert!(parse_args(&argv("schema --db a --db b")).is_err());
    }

    #[test]
    fn empty_args_give_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn parses_serve() {
        let c =
            parse_args(&argv("serve --db x.db --addr 127.0.0.1:0 --workers 2 --queue 8")).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                db: "x.db".into(),
                addr: "127.0.0.1:0".into(),
                workers: 2,
                queue_depth: 8,
                cache_capacity: 128,
                timeout_ms: Some(30_000),
                trace: false,
            }
        );
        // --timeout-ms 0 disables the default deadline.
        match parse_args(&argv("serve --db x.db --timeout-ms 0")).unwrap() {
            Command::Serve { timeout_ms, .. } => assert_eq!(timeout_ms, None),
            _ => panic!("wrong command"),
        }
        // --trace is a valueless switch.
        match parse_args(&argv("serve --db x.db --trace --workers 2")).unwrap() {
            Command::Serve { trace, workers, .. } => {
                assert!(trace);
                assert_eq!(workers, 2);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parses_bench_serve() {
        let mut a = argv("bench-serve --addr 127.0.0.1:7171 --clients 8 --requests 50");
        a.extend(["--query".to_owned(), "Q(n) :- r(n)".to_owned()]);
        match parse_args(&a).unwrap() {
            Command::BenchServe {
                addr, clients, requests, scheme, timeout_ms, permute, ..
            } => {
                assert_eq!(addr, "127.0.0.1:7171");
                assert_eq!(clients, 8);
                assert_eq!(requests, 50);
                assert_eq!(scheme, Scheme::Klm);
                assert_eq!(timeout_ms, None);
                assert!(!permute);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&argv("bench-serve --query Q")).is_err()); // no --addr
                                                                      // --permute-queries is a valueless switch.
        let mut b = argv("bench-serve --addr 127.0.0.1:7171 --permute-queries --seed 9");
        b.extend(["--query".to_owned(), "Q(n) :- r(n)".to_owned()]);
        match parse_args(&b).unwrap() {
            Command::BenchServe { permute, seed, .. } => {
                assert!(permute);
                assert_eq!(seed, 9);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parses_chaos() {
        let mut a = argv("chaos --db x.db --plan all-points-error --seed 7 --clients 3");
        a.extend(["--query".to_owned(), "Q(n) :- r(n)".to_owned()]);
        match parse_args(&a).unwrap() {
            Command::Chaos { db, plan, seed, scheme, clients, requests, workers, .. } => {
                assert_eq!(db, PathBuf::from("x.db"));
                assert_eq!(plan, "all-points-error");
                assert_eq!(seed, 7);
                assert_eq!(scheme, Scheme::Klm);
                assert_eq!(clients, 3);
                assert_eq!(requests, 16);
                assert_eq!(workers, 2);
            }
            _ => panic!("wrong command"),
        }
        // Defaults: the smoke plan at seed 42.
        let mut b = argv("chaos --db x.db");
        b.extend(["--query".to_owned(), "Q(n) :- r(n)".to_owned()]);
        match parse_args(&b).unwrap() {
            Command::Chaos { plan, seed, .. } => {
                assert_eq!(plan, "smoke");
                assert_eq!(seed, 42);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&argv("chaos --db x.db")).is_err()); // no --query
    }

    #[test]
    fn parses_debug() {
        for target in ["flight", "slowlog"] {
            let c = parse_args(&argv(&format!("debug {target} --addr 127.0.0.1:7171"))).unwrap();
            assert_eq!(c, Command::Debug { addr: "127.0.0.1:7171".into(), target: target.into() });
        }
        assert!(parse_args(&argv("debug --addr 127.0.0.1:7171")).is_err()); // no target
        assert!(parse_args(&argv("debug heap --addr 127.0.0.1:7171")).is_err());
        assert!(parse_args(&argv("debug flight")).is_err()); // no --addr
    }

    #[test]
    fn parses_perf_passthrough() {
        match parse_args(&argv("perf run --profile ci --pr 6")).unwrap() {
            Command::Perf { args } => {
                assert_eq!(args, vec!["run", "--profile", "ci", "--pr", "6"]);
            }
            _ => panic!("wrong command"),
        }
        match parse_args(&argv("perf")).unwrap() {
            Command::Perf { args } => assert!(args.is_empty()),
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn scheme_names_are_case_insensitive() {
        for (name, scheme) in [
            ("Natural", Scheme::Natural),
            ("KL", Scheme::Kl),
            ("KLM", Scheme::Klm),
            ("COVER", Scheme::Cover),
        ] {
            assert_eq!(parse_scheme(name).unwrap(), scheme);
        }
        assert!(parse_scheme("montecarlo").is_err());
    }
}
