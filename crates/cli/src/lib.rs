#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The `cqa-cli` command-line tool.
//!
//! ```text
//! cqa-cli generate tpch --scale 0.001 --seed 42 --out wh.cqadb
//! cqa-cli noise    --db wh.cqadb --query 'Q(n) :- customer(k, n, nk, s, b)' \
//!                  --p 0.5 --out noisy.cqadb
//! cqa-cli stats    --db noisy.cqadb --query '...'
//! cqa-cli query    --db noisy.cqadb --query '...' --scheme klm
//! cqa-cli exact    --db noisy.cqadb --query '...'
//! cqa-cli schema   --db noisy.cqadb
//! ```
//!
//! Databases travel between commands as self-describing dumps
//! (`cqa_storage::io`). The argument parser is hand-rolled and lives in
//! [`args`] so it can be tested without spawning processes; [`run`]
//! executes parsed commands.

pub mod args;
pub mod run;

pub use args::{parse_args, Command};
pub use run::execute;
