#![warn(missing_docs)]

//! Conjunctive queries: representation, parsing, and evaluation.
//!
//! A CQ `Q(x̄) :- R₁(z̄₁) ∧ … ∧ Rₙ(z̄ₙ)` (§2) is represented by [`ast`],
//! parsed from a datalog-style surface syntax by [`parser`], and evaluated
//! by [`eval`], which enumerates **all homomorphisms** from the query to a
//! database together with per-atom fact provenance. The provenance is what
//! the synopsis construction (the paper's preprocessing step, §5) consumes:
//! each homomorphism `h` yields a homomorphic image `h(Q)` as a set of
//! facts, from which block metadata is attached.

pub mod ast;
pub mod eval;
pub mod parser;

pub use ast::{Atom, ConjunctiveQuery, Term, VarId};
pub use eval::{answers, for_each_hom, homomorphisms, is_answer, EvalOptions, Hom};
pub use parser::parse;
