#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Conjunctive queries: representation, parsing, and evaluation.
//!
//! A CQ `Q(x̄) :- R₁(z̄₁) ∧ … ∧ Rₙ(z̄ₙ)` (§2) is represented by [`ast`],
//! parsed from a datalog-style surface syntax by [`parser`], and evaluated
//! by [`eval`], which enumerates **all homomorphisms** from the query to a
//! database together with per-atom fact provenance. The provenance is what
//! the synopsis construction (the paper's preprocessing step, §5) consumes:
//! each homomorphism `h` yields a homomorphic image `h(Q)` as a set of
//! facts, from which block metadata is attached.

//!
//! Queries that differ only in variable names and atom order are
//! interchangeable for synopsis construction; [`canonical`] computes a
//! deterministic representative of that equivalence class with a stable
//! fingerprint, which the server uses as its synopsis-cache key.
//!
//! ```
//! use cqa_query::parse;
//! use cqa_storage::{ColumnType::*, Schema};
//!
//! let schema = Schema::builder()
//!     .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
//!     .build();
//! let q = parse(&schema, "Q(n) :- employee(i, n, 'HR')")?;
//! assert_eq!(q.head.len(), 1);
//! assert_eq!(q.canonical_form().text(), "Q(x0) :- r0(x1, x0, 'HR')");
//! # Ok::<(), cqa_common::CqaError>(())
//! ```

pub mod ast;
pub mod canonical;
pub mod eval;
pub mod parser;

pub use ast::{Atom, ConjunctiveQuery, Term, VarId};
pub use canonical::{permute_query_text, CanonicalAtom, CanonicalQuery, CanonicalTerm};
pub use eval::{answers, for_each_hom, homomorphisms, is_answer, EvalOptions, Hom};
pub use parser::parse;
