//! A datalog-style surface syntax for conjunctive queries.
//!
//! ```text
//! Q(x, d) :- employee(x, n, d), dept(d, 2)
//! ```
//!
//! * Identifiers in the head and at term positions are **variables**.
//! * Integers (`42`, `-3`) and single-quoted strings (`'HR'`) are constants.
//! * The relation names and arities are validated against a [`Schema`],
//!   and constant types against the column types.
//! * A Boolean query has an empty head: `Q() :- r(x, y)`.

use crate::ast::{Atom, ConjunctiveQuery, Term, VarId};
use cqa_common::{CqaError, Result};
use cqa_storage::{ColumnType, Schema, Value};
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    ColonDash,
}

pub(crate) fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            ':' => {
                chars.next();
                if chars.next() != Some('-') {
                    return Err(CqaError::Parse("expected '-' after ':'".into()));
                }
                toks.push(Tok::ColonDash);
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(CqaError::Parse("unterminated string".into())),
                    }
                }
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let n: i64 =
                    s.parse().map_err(|_| CqaError::Parse(format!("bad integer literal '{s}'")))?;
                toks.push(Tok::Int(n));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            other => return Err(CqaError::Parse(format!("unexpected character '{other}'"))),
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    schema: &'a Schema,
    vars: HashMap<String, VarId>,
    var_names: Vec<String>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| CqaError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: Tok) -> Result<()> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(CqaError::Parse(format!("expected {want:?}, got {got:?}")))
        }
    }

    fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let v = VarId(self.var_names.len() as u32);
        self.vars.insert(name.to_owned(), v);
        self.var_names.push(name.to_owned());
        v
    }

    fn parse_query(&mut self) -> Result<ConjunctiveQuery> {
        // Head: name '(' vars ')' ':-'
        let name = match self.next()? {
            Tok::Ident(n) => n,
            t => return Err(CqaError::Parse(format!("expected query name, got {t:?}"))),
        };
        self.expect(Tok::LParen)?;
        let mut head = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                match self.next()? {
                    Tok::Ident(v) => head.push(self.var(&v)),
                    t => {
                        return Err(CqaError::Parse(format!(
                            "head terms must be variables, got {t:?}"
                        )))
                    }
                }
                match self.next()? {
                    Tok::Comma => continue,
                    Tok::RParen => break,
                    t => return Err(CqaError::Parse(format!("expected ',' or ')', got {t:?}"))),
                }
            }
        } else {
            self.expect(Tok::RParen)?;
        }
        self.expect(Tok::ColonDash)?;

        // Body: atom (',' atom)*
        let mut atoms = Vec::new();
        loop {
            atoms.push(self.parse_atom()?);
            match self.peek() {
                Some(Tok::Comma) => {
                    self.pos += 1;
                }
                None => break,
                Some(t) => {
                    return Err(CqaError::Parse(format!("expected ',' or end of query, got {t:?}")))
                }
            }
        }
        ConjunctiveQuery::new(name, head, atoms, std::mem::take(&mut self.var_names))
    }

    fn parse_atom(&mut self) -> Result<Atom> {
        let rel_name = match self.next()? {
            Tok::Ident(n) => n,
            t => return Err(CqaError::Parse(format!("expected relation name, got {t:?}"))),
        };
        let rel = self.schema.require(&rel_name)?;
        let def = self.schema.relation(rel);
        self.expect(Tok::LParen)?;
        let mut terms = Vec::new();
        loop {
            let term = match self.next()? {
                Tok::Ident(v) => Term::Var(self.var(&v)),
                Tok::Int(i) => Term::Const(Value::Int(i)),
                Tok::Str(s) => Term::Const(Value::Str(s)),
                t => return Err(CqaError::Parse(format!("expected term, got {t:?}"))),
            };
            terms.push(term);
            match self.next()? {
                Tok::Comma => continue,
                Tok::RParen => break,
                t => return Err(CqaError::Parse(format!("expected ',' or ')', got {t:?}"))),
            }
        }
        if terms.len() != def.arity() {
            return Err(CqaError::ArityMismatch {
                relation: rel_name,
                expected: def.arity(),
                got: terms.len(),
            });
        }
        for (i, t) in terms.iter().enumerate() {
            if let Term::Const(v) = t {
                let ok = matches!(
                    (v, def.columns[i].ty),
                    (Value::Int(_), ColumnType::Int) | (Value::Str(_), ColumnType::Str)
                );
                if !ok {
                    return Err(CqaError::TypeMismatch {
                        relation: rel_name,
                        column: def.columns[i].name.clone(),
                        detail: format!("constant {v} has the wrong type"),
                    });
                }
            }
        }
        Ok(Atom { rel, terms })
    }
}

/// Parses a conjunctive query against a schema.
pub fn parse(schema: &Schema, input: &str) -> Result<ConjunctiveQuery> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0, schema, vars: HashMap::new(), var_names: Vec::new() };
    let q = p.parse_query()?;
    if p.pos != p.toks.len() {
        return Err(CqaError::Parse("trailing input after query".into()));
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_storage::ColumnType::*;

    fn schema() -> Schema {
        Schema::builder()
            .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
            .relation("dept", &[("dname", Str), ("floor", Int)], Some(1))
            .build()
    }

    #[test]
    fn parses_simple_query() {
        let s = schema();
        let q = parse(&s, "Q(x) :- employee(x, n, d)").unwrap();
        assert_eq!(q.name, "Q");
        assert_eq!(q.head.len(), 1);
        assert_eq!(q.atoms.len(), 1);
        assert_eq!(q.num_vars(), 3);
    }

    #[test]
    fn parses_join_and_constants() {
        let s = schema();
        let q = parse(&s, "Q(x, d) :- employee(x, n, d), dept(d, 2)").unwrap();
        assert_eq!(q.join_count(), 1);
        assert_eq!(q.constant_count(), 1);
        assert_eq!(q.atoms[1].terms[1], Term::Const(Value::Int(2)));
    }

    #[test]
    fn parses_string_constants() {
        let s = schema();
        let q = parse(&s, "Q(x) :- employee(x, n, 'HR')").unwrap();
        assert_eq!(q.atoms[0].terms[2], Term::Const(Value::str("HR")));
    }

    #[test]
    fn parses_boolean_query() {
        let s = schema();
        let q = parse(&s, "Q() :- employee(x, n, d)").unwrap();
        assert!(q.is_boolean());
    }

    #[test]
    fn roundtrips_through_display() {
        let s = schema();
        let text = "Q(x, d) :- employee(x, n, d), dept(d, 2)";
        let q = parse(&s, text).unwrap();
        let rendered = q.display(&s).to_string();
        let q2 = parse(&s, &rendered).unwrap();
        assert_eq!(q.head, q2.head);
        assert_eq!(q.atoms, q2.atoms);
    }

    #[test]
    fn negative_integers_parse() {
        let s = schema();
        let q = parse(&s, "Q() :- dept(n, -5)").unwrap();
        assert_eq!(q.atoms[0].terms[1], Term::Const(Value::Int(-5)));
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let s = schema();
        assert!(matches!(parse(&s, "Q() :- nope(x)"), Err(CqaError::UnknownName(_))));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let s = schema();
        assert!(matches!(parse(&s, "Q() :- employee(x, y)"), Err(CqaError::ArityMismatch { .. })));
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let s = schema();
        assert!(matches!(
            parse(&s, "Q() :- employee('one', n, d)"),
            Err(CqaError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn constants_in_head_are_rejected() {
        let s = schema();
        assert!(parse(&s, "Q(1) :- employee(x, n, d)").is_err());
    }

    #[test]
    fn unsafe_head_variable_is_rejected() {
        let s = schema();
        assert!(parse(&s, "Q(z) :- employee(x, n, d)").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let s = schema();
        assert!(parse(&s, "Q() :- employee(x, n, d) garbage()").is_err());
    }

    #[test]
    fn unterminated_string_is_rejected() {
        let s = schema();
        assert!(parse(&s, "Q() :- employee(x, n, 'HR").is_err());
    }

    #[test]
    fn repeated_variables_unify() {
        let s = schema();
        // Same variable in two positions of one atom.
        let q = parse(&s, "Q() :- dept(d, f), dept(d, f)").unwrap();
        assert_eq!(q.num_vars(), 2);
    }
}
