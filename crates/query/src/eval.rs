//! Homomorphism enumeration: the join engine.
//!
//! [`for_each_hom`] streams every homomorphism `h` from a CQ to a database,
//! delivering both the variable binding and the per-atom fact provenance
//! (`h(Q)` as row indices). The synopsis builder groups these by the head
//! tuple `h(x̄)` to form the paper's `syn_{Σ,Q}(D)` in a single pass —
//! functionally the paper's one-SQL-query preprocessing (§5).
//!
//! The plan is a greedy bound-first atom ordering; each step looks up
//! candidate rows through an on-demand hash index on its bound positions
//! (or scans when nothing is bound, which only happens for the first atom
//! of a connected component).

use crate::ast::{ConjunctiveQuery, Term, VarId};
use cqa_common::{CqaError, Deadline, Result};
use cqa_storage::{Database, Datum};
use std::collections::HashSet;
use std::ops::ControlFlow;

/// Limits on an evaluation run.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Stop after this many homomorphisms (`None` = unlimited).
    pub max_homs: Option<usize>,
    /// Abort with [`CqaError::TimedOut`] past this deadline.
    pub deadline: Deadline,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { max_homs: None, deadline: Deadline::none() }
    }
}

/// A materialized homomorphism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hom {
    /// `binding[v]` is the image of variable `v`.
    pub binding: Vec<Datum>,
    /// `facts[i]` is the row (in `q.atoms[i].rel`) the `i`-th atom maps to.
    pub facts: Vec<u32>,
}

const POLL_INTERVAL: u64 = 4096;

struct Engine<'a> {
    db: &'a Database,
    q: &'a ConjunctiveQuery,
    /// Plan: atom indices in evaluation order.
    order: Vec<usize>,
    /// Per plan step: positions bound before the step (for index lookup).
    lookup_cols: Vec<Vec<u16>>,
    /// Resolved constants per atom position (`None` for variables).
    consts: Vec<Vec<Option<Datum>>>,
    /// Current binding, `None` = unbound.
    binding: Vec<Option<Datum>>,
    /// Chosen row per plan step.
    rows: Vec<u32>,
    opts: EvalOptions,
    emitted: usize,
    work: u64,
}

impl<'a> Engine<'a> {
    /// Resolves constants and computes the greedy plan. Returns `None` when
    /// some constant cannot occur in the database (empty result).
    fn plan(
        db: &'a Database,
        q: &'a ConjunctiveQuery,
        seed: &[(VarId, Datum)],
        opts: EvalOptions,
    ) -> Option<Self> {
        let mut consts = Vec::with_capacity(q.atoms.len());
        for atom in &q.atoms {
            let mut row = Vec::with_capacity(atom.terms.len());
            for t in &atom.terms {
                match t {
                    Term::Var(_) => row.push(None),
                    Term::Const(v) => match db.lookup_value(v) {
                        Some(d) => row.push(Some(d)),
                        None => return None,
                    },
                }
            }
            consts.push(row);
        }

        let mut binding = vec![None; q.num_vars()];
        let mut bound: Vec<bool> = vec![false; q.num_vars()];
        for &(v, d) in seed {
            if let Some(existing) = binding[v.idx()] {
                if existing != d {
                    return None;
                }
            }
            binding[v.idx()] = Some(d);
            bound[v.idx()] = true;
        }

        // Greedy ordering: repeatedly take the atom with the most bound
        // positions; break ties towards smaller tables.
        let n = q.atoms.len();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut order = Vec::with_capacity(n);
        let mut lookup_cols = Vec::with_capacity(n);
        while !remaining.is_empty() {
            let (pick_pos, _) = remaining
                .iter()
                .enumerate()
                .map(|(pos, &ai)| {
                    let atom = &q.atoms[ai];
                    let mut bound_count = 0usize;
                    for (i, t) in atom.terms.iter().enumerate() {
                        let is_bound = match t {
                            Term::Const(_) => true,
                            Term::Var(v) => bound[v.idx()],
                        };
                        if is_bound {
                            bound_count += 1;
                        }
                        let _ = i;
                    }
                    let size = db.table(atom.rel).len();
                    // Higher bound_count first, then smaller table.
                    (pos, (std::cmp::Reverse(bound_count), size))
                })
                .min_by_key(|&(_, key)| key)
                // cqa-lint: allow(no-panic-in-request-path): the enclosing while-loop guard guarantees `remaining` is non-empty
                .expect("remaining non-empty");
            let ai = remaining.swap_remove(pick_pos);
            let atom = &q.atoms[ai];
            let mut cols = Vec::new();
            let mut seen_here: HashSet<VarId> = HashSet::new();
            for (i, t) in atom.terms.iter().enumerate() {
                match t {
                    Term::Const(_) => cols.push(i as u16),
                    Term::Var(v) => {
                        if bound[v.idx()] && !seen_here.contains(v) {
                            // Repeats of a bound var inside one atom go to
                            // the runtime check, not the index key, so the
                            // key stays free of duplicate columns.
                            cols.push(i as u16);
                            seen_here.insert(*v);
                        }
                    }
                }
            }
            for v in atom.vars() {
                bound[v.idx()] = true;
            }
            order.push(ai);
            lookup_cols.push(cols);
        }

        Some(Engine {
            db,
            q,
            order,
            lookup_cols,
            consts,
            binding,
            rows: vec![0; n],
            opts,
            emitted: 0,
            work: 0,
        })
    }

    fn poll(&mut self) -> Result<()> {
        self.work += 1;
        if self.work.is_multiple_of(POLL_INTERVAL) && self.opts.deadline.expired() {
            return Err(CqaError::TimedOut { phase: "query evaluation" });
        }
        Ok(())
    }

    fn run<F>(&mut self, f: &mut F) -> Result<ControlFlow<()>>
    where
        F: FnMut(&[Datum], &[u32]) -> ControlFlow<()>,
    {
        self.step(0, f)
    }

    fn step<F>(&mut self, depth: usize, f: &mut F) -> Result<ControlFlow<()>>
    where
        F: FnMut(&[Datum], &[u32]) -> ControlFlow<()>,
    {
        if depth == self.order.len() {
            self.emitted += 1;
            // All variables of the body are bound here; head vars are a
            // subset by safety.
            let binding: Vec<Datum> =
                self.binding.iter().map(|b| b.unwrap_or(Datum::Int(0))).collect();
            // Re-order rows into atom order for the provenance.
            let mut facts = vec![0u32; self.order.len()];
            for (step, &ai) in self.order.iter().enumerate() {
                facts[ai] = self.rows[step];
            }
            // cqa-lint: allow(opaque-call): `f` is the caller's FnMut visitor; its body is attributed to the caller, where the panic/alloc rules see it
            let flow = f(&binding, &facts);
            if let Some(max) = self.opts.max_homs {
                if self.emitted >= max {
                    return Ok(ControlFlow::Break(()));
                }
            }
            return Ok(flow);
        }

        let ai = self.order[depth];
        let atom = &self.q.atoms[ai];
        let rel = atom.rel;
        let cols = &self.lookup_cols[depth];

        // Candidate rows: indexed lookup when something is bound, else scan.
        let candidates: CandidateIter = if cols.is_empty() {
            CandidateIter::Scan(0..self.db.table(rel).len() as u32)
        } else {
            let key: Vec<Datum> = cols
                .iter()
                .map(|&c| match &atom.terms[c as usize] {
                    // cqa-lint: allow(no-panic-in-request-path): `consts` is populated for every Const term when the plan is built
                    Term::Const(_) => self.consts[ai][c as usize].expect("resolved"),
                    // cqa-lint: allow(no-panic-in-request-path): lookup_cols only lists vars the plan already bound at an earlier depth
                    Term::Var(v) => self.binding[v.idx()].expect("bound by plan"),
                })
                .collect();
            let ix = self.db.index(rel, cols);
            CandidateIter::Rows(ix.get(&key).to_vec().into_iter())
        };

        for row_id in candidates {
            self.poll()?;
            let row = self.db.table(rel).row(row_id);
            // Unify, recording which variables this atom binds (trail).
            let mut trail: Vec<VarId> = Vec::new();
            let mut ok = true;
            for (i, t) in atom.terms.iter().enumerate() {
                match t {
                    Term::Const(_) => {
                        if self.consts[ai][i] != Some(row[i]) {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match self.binding[v.idx()] {
                        Some(d) => {
                            if d != row[i] {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            self.binding[v.idx()] = Some(row[i]);
                            trail.push(*v);
                        }
                    },
                }
            }
            if ok {
                self.rows[depth] = row_id;
                let flow = self.step(depth + 1, f)?;
                if flow.is_break() {
                    for v in trail {
                        self.binding[v.idx()] = None;
                    }
                    return Ok(ControlFlow::Break(()));
                }
            }
            for v in trail {
                self.binding[v.idx()] = None;
            }
        }
        Ok(ControlFlow::Continue(()))
    }
}

enum CandidateIter {
    Scan(std::ops::Range<u32>),
    Rows(std::vec::IntoIter<u32>),
}

impl Iterator for CandidateIter {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        match self {
            CandidateIter::Scan(r) => r.next(),
            CandidateIter::Rows(it) => it.next(),
        }
    }
}

/// Streams every homomorphism from `q` to `db`.
///
/// The callback receives the full variable binding (indexed by [`VarId`])
/// and the per-atom fact rows; returning `ControlFlow::Break` stops the
/// enumeration early.
pub fn for_each_hom<F>(
    db: &Database,
    q: &ConjunctiveQuery,
    opts: EvalOptions,
    mut f: F,
) -> Result<()>
where
    F: FnMut(&[Datum], &[u32]) -> ControlFlow<()>,
{
    for_each_hom_seeded(db, q, &[], opts, &mut f)
}

/// Like [`for_each_hom`] but with some variables pre-bound.
pub fn for_each_hom_seeded<F>(
    db: &Database,
    q: &ConjunctiveQuery,
    seed: &[(VarId, Datum)],
    opts: EvalOptions,
    f: &mut F,
) -> Result<()>
where
    F: FnMut(&[Datum], &[u32]) -> ControlFlow<()>,
{
    match Engine::plan(db, q, seed, opts) {
        None => Ok(()),
        Some(mut engine) => {
            // An early break from the callback is a normal outcome here.
            let _ = engine.run(f)?;
            Ok(())
        }
    }
}

/// Materializes all homomorphisms (use only when the count is manageable).
pub fn homomorphisms(db: &Database, q: &ConjunctiveQuery, opts: EvalOptions) -> Result<Vec<Hom>> {
    let mut out = Vec::new();
    for_each_hom(db, q, opts, |binding, facts| {
        out.push(Hom { binding: binding.to_vec(), facts: facts.to_vec() });
        ControlFlow::Continue(())
    })?;
    Ok(out)
}

/// The distinct answers `Q(D)` (§2): projections of the homomorphisms onto
/// the head variables.
pub fn answers(db: &Database, q: &ConjunctiveQuery) -> Result<Vec<Vec<Datum>>> {
    let mut seen: HashSet<Vec<Datum>> = HashSet::new();
    let mut out = Vec::new();
    for_each_hom(db, q, EvalOptions::default(), |binding, _| {
        let t: Vec<Datum> = q.head.iter().map(|v| binding[v.idx()]).collect();
        if seen.insert(t.clone()) {
            out.push(t);
        }
        ControlFlow::Continue(())
    })?;
    Ok(out)
}

/// True iff `t̄ ∈ Q(D)`: some homomorphism maps the head to `t̄`.
pub fn is_answer(db: &Database, q: &ConjunctiveQuery, t: &[Datum]) -> Result<bool> {
    assert_eq!(t.len(), q.head.len(), "tuple arity must match the head");
    let mut seed: Vec<(VarId, Datum)> = Vec::with_capacity(t.len());
    for (&v, &d) in q.head.iter().zip(t) {
        // Repeated head variables must agree.
        if let Some(&(_, prev)) = seed.iter().find(|&&(w, _)| w == v) {
            if prev != d {
                return Ok(false);
            }
            continue;
        }
        seed.push((v, d));
    }
    let mut found = false;
    for_each_hom_seeded(db, q, &seed, EvalOptions::default(), &mut |_, _| {
        found = true;
        ControlFlow::Break(())
    })?;
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use cqa_storage::ColumnType::*;
    use cqa_storage::{Schema, Value};

    /// The paper's Example 1.1 plus a department relation for joins.
    fn db() -> Database {
        let schema = Schema::builder()
            .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
            .relation("dept", &[("dname", Str), ("floor", Int)], Some(1))
            .foreign_key("employee", &["dept"], "dept", &["dname"])
            .build();
        let mut db = Database::new(schema);
        for (id, name, dept) in
            [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT")]
        {
            db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])
                .unwrap();
        }
        for (dname, floor) in [("HR", 1), ("IT", 2)] {
            db.insert_named("dept", &[Value::str(dname), Value::Int(floor)]).unwrap();
        }
        db
    }

    #[test]
    fn enumerates_all_homomorphisms() {
        let db = db();
        let q = parse(db.schema(), "Q(x, n, d) :- employee(x, n, d)").unwrap();
        let homs = homomorphisms(&db, &q, EvalOptions::default()).unwrap();
        assert_eq!(homs.len(), 4);
    }

    #[test]
    fn constant_filters_apply() {
        let db = db();
        let q = parse(db.schema(), "Q(x) :- employee(x, n, 'IT')").unwrap();
        let homs = homomorphisms(&db, &q, EvalOptions::default()).unwrap();
        assert_eq!(homs.len(), 3);
        let ans = answers(&db, &q).unwrap();
        assert_eq!(ans.len(), 2); // ids 1 and 2
    }

    #[test]
    fn join_produces_cross_relation_matches() {
        let db = db();
        let q = parse(db.schema(), "Q(n, f) :- employee(x, n, d), dept(d, f)").unwrap();
        let homs = homomorphisms(&db, &q, EvalOptions::default()).unwrap();
        assert_eq!(homs.len(), 4);
        let ans = answers(&db, &q).unwrap();
        // (Bob,1), (Bob,2), (Alice,2), (Tim,2)
        assert_eq!(ans.len(), 4);
    }

    #[test]
    fn provenance_rows_reconstruct_the_image() {
        let db = db();
        let q = parse(db.schema(), "Q() :- employee(x, n, d), dept(d, f)").unwrap();
        for_each_hom(&db, &q, EvalOptions::default(), |binding, facts| {
            // The dept atom's row must actually contain the binding of d.
            let dept_rel = db.schema().rel_id("dept").unwrap();
            let drow = db.table(dept_rel).row(facts[1]);
            let d_var = q.atoms[0].terms[2].clone();
            if let Term::Var(v) = d_var {
                assert_eq!(drow[0], binding[v.idx()]);
            }
            ControlFlow::Continue(())
        })
        .unwrap();
    }

    #[test]
    fn repeated_variable_in_atom_requires_equality() {
        let schema = Schema::builder().relation("p", &[("a", Int), ("b", Int)], None).build();
        let mut db = Database::new(schema);
        db.insert_named("p", &[Value::Int(1), Value::Int(1)]).unwrap();
        db.insert_named("p", &[Value::Int(1), Value::Int(2)]).unwrap();
        let q = parse(db.schema(), "Q(x) :- p(x, x)").unwrap();
        let ans = answers(&db, &q).unwrap();
        assert_eq!(ans, vec![vec![Datum::Int(1)]]);
    }

    #[test]
    fn unknown_string_constant_yields_empty_result() {
        let db = db();
        let q = parse(db.schema(), "Q(x) :- employee(x, n, 'Payroll')").unwrap();
        assert!(homomorphisms(&db, &q, EvalOptions::default()).unwrap().is_empty());
    }

    #[test]
    fn boolean_query_same_department_example() {
        // The paper's Example 1.1 query: do employees 1 and 2 work in the
        // same department? True in the full (inconsistent) database.
        let db = db();
        let q = parse(db.schema(), "Q() :- employee(1, n1, d), employee(2, n2, d)").unwrap();
        let homs = homomorphisms(&db, &q, EvalOptions::default()).unwrap();
        // (1,Bob,IT) joins with (2,Alice,IT) and (2,Tim,IT).
        assert_eq!(homs.len(), 2);
    }

    #[test]
    fn is_answer_checks_membership() {
        let db = db();
        let q = parse(db.schema(), "Q(x, d) :- employee(x, n, d)").unwrap();
        let it = db.lookup_value(&Value::str("IT")).unwrap();
        let hr = db.lookup_value(&Value::str("HR")).unwrap();
        assert!(is_answer(&db, &q, &[Datum::Int(1), it]).unwrap());
        assert!(!is_answer(&db, &q, &[Datum::Int(2), hr]).unwrap());
    }

    #[test]
    fn is_answer_with_repeated_head_vars() {
        let db = db();
        let q = parse(db.schema(), "Q(x, x) :- employee(x, n, d)").unwrap();
        assert!(is_answer(&db, &q, &[Datum::Int(1), Datum::Int(1)]).unwrap());
        assert!(!is_answer(&db, &q, &[Datum::Int(1), Datum::Int(2)]).unwrap());
    }

    #[test]
    fn max_homs_limits_enumeration() {
        let db = db();
        let q = parse(db.schema(), "Q(x) :- employee(x, n, d)").unwrap();
        let homs = homomorphisms(&db, &q, EvalOptions { max_homs: Some(2), ..Default::default() })
            .unwrap();
        assert_eq!(homs.len(), 2);
    }

    #[test]
    fn callback_break_stops_early() {
        let db = db();
        let q = parse(db.schema(), "Q(x) :- employee(x, n, d)").unwrap();
        let mut count = 0;
        for_each_hom(&db, &q, EvalOptions::default(), |_, _| {
            count += 1;
            ControlFlow::Break(())
        })
        .unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn cartesian_product_when_disconnected() {
        let db = db();
        let q = parse(db.schema(), "Q() :- employee(x, n, d), dept(e, f)").unwrap();
        let homs = homomorphisms(&db, &q, EvalOptions::default()).unwrap();
        assert_eq!(homs.len(), 4 * 2);
    }

    #[test]
    fn self_join_enumerates_pairs() {
        let db = db();
        let q = parse(db.schema(), "Q(x, y) :- employee(x, n1, d), employee(y, n2, d)").unwrap();
        let homs = homomorphisms(&db, &q, EvalOptions::default()).unwrap();
        // HR: 1 pair; IT: 3×3 pairs.
        assert_eq!(homs.len(), 1 + 9);
    }
}
