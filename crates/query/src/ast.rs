//! The conjunctive-query AST.

use cqa_common::{CqaError, Result};
use cqa_storage::{RelId, Schema, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Dense id of a variable within one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A term of an atom: a variable or a constant.
///
/// Constants are stored as schema-level [`Value`]s so a query is
/// independent of any particular database's string dictionary; evaluation
/// resolves them against the target database (a constant whose string the
/// database has never seen simply matches nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A variable.
    Var(VarId),
    /// A constant value.
    Const(Value),
}

/// An atom `R(t₁, …, tₙ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The relation.
    pub rel: RelId,
    /// Terms, one per column.
    pub terms: Vec<Term>,
}

impl Atom {
    /// The variables occurring in this atom, in position order (with
    /// duplicates for repeated variables).
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().filter_map(|t| match t {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        })
    }

    /// Number of constant terms.
    pub fn constant_count(&self) -> usize {
        self.terms.iter().filter(|t| matches!(t, Term::Const(_))).count()
    }
}

/// A conjunctive query `Q(x̄) :- R₁(z̄₁), …, Rₙ(z̄ₙ)`.
///
/// Every head variable must occur in some atom (safety); the remaining
/// variables are existentially quantified. The *number of joins* of a CQ —
/// the static parameter tuned by the paper's SQG — is taken as the number
/// of additional atom-incidences of its variables: `Σ_v (occ(v) − 1)` over
/// variables `v` occurring in ≥ 2 distinct atoms, which matches the SQG's
/// construction of one join condition per shared variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Query name (for display).
    pub name: String,
    /// Answer variables `x̄`.
    pub head: Vec<VarId>,
    /// Body atoms.
    pub atoms: Vec<Atom>,
    var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Builds a query, validating safety (head variables occur in the body)
    /// and that variable ids are dense in `0..var_names.len()`.
    pub fn new(
        name: impl Into<String>,
        head: Vec<VarId>,
        atoms: Vec<Atom>,
        var_names: Vec<String>,
    ) -> Result<Self> {
        let n = var_names.len() as u32;
        let mut seen = vec![false; n as usize];
        for atom in &atoms {
            for v in atom.vars() {
                if v.0 >= n {
                    return Err(CqaError::Parse(format!("variable id {} out of range", v.0)));
                }
                seen[v.idx()] = true;
            }
        }
        for &h in &head {
            if h.0 >= n || !seen[h.idx()] {
                return Err(CqaError::Parse(format!(
                    "head variable {} does not occur in the body (unsafe query)",
                    var_names.get(h.idx()).cloned().unwrap_or_else(|| format!("#{}", h.0))
                )));
            }
        }
        if atoms.is_empty() {
            return Err(CqaError::Parse("query must have at least one atom".into()));
        }
        Ok(ConjunctiveQuery { name: name.into(), head, atoms, var_names })
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.idx()]
    }

    /// True when the query is Boolean (no answer variables).
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// The number of joins: `Σ_v (occurrences-in-distinct-atoms(v) − 1)`.
    pub fn join_count(&self) -> usize {
        let mut total = 0;
        for v in 0..self.num_vars() as u32 {
            let occ = self.atoms.iter().filter(|a| a.vars().any(|w| w == VarId(v))).count();
            if occ > 1 {
                total += occ - 1;
            }
        }
        total
    }

    /// Total number of constant occurrences in the body (the SQG's `c`).
    pub fn constant_count(&self) -> usize {
        self.atoms.iter().map(Atom::constant_count).sum()
    }

    /// The set of distinct variables occurring in the body.
    pub fn body_vars(&self) -> BTreeSet<VarId> {
        self.atoms.iter().flat_map(|a| a.vars().collect::<Vec<_>>()).collect()
    }

    /// A copy of this query with a different head (projection). Used by the
    /// dynamic query generator, which varies the projected attributes to
    /// tune balance, and to form the Boolean version `Q_p[0]`.
    pub fn with_head(&self, name: impl Into<String>, head: Vec<VarId>) -> Result<Self> {
        Self::new(name, head, self.atoms.clone(), self.var_names.clone())
    }

    /// The Boolean version of this query (all variables quantified).
    pub fn boolean(&self) -> Self {
        self.with_head(format!("{}_bool", self.name), Vec::new())
            .expect("dropping the head cannot make a query unsafe")
    }

    /// Renders the query in the surface syntax, e.g.
    /// `Q(x) :- employee(x, y, 'HR')`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        QueryDisplay { q: self, schema }
    }
}

struct QueryDisplay<'a> {
    q: &'a ConjunctiveQuery,
    schema: &'a Schema,
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.q.name)?;
        for (i, v) in self.q.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.q.var_name(*v))?;
        }
        write!(f, ") :- ")?;
        for (i, atom) in self.q.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", self.schema.relation(atom.rel).name)?;
            for (j, t) in atom.terms.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                match t {
                    Term::Var(v) => write!(f, "{}", self.q.var_name(*v))?,
                    Term::Const(c) => write!(f, "{c}")?,
                }
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_storage::ColumnType::*;

    fn schema() -> Schema {
        Schema::builder()
            .relation("r", &[("a", Int), ("b", Int)], Some(1))
            .relation("s", &[("c", Int), ("d", Int)], Some(1))
            .build()
    }

    fn rid(s: &Schema, name: &str) -> RelId {
        s.rel_id(name).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let s = schema();
        let q = ConjunctiveQuery::new(
            "Q",
            vec![VarId(0)],
            vec![
                Atom { rel: rid(&s, "r"), terms: vec![Term::Var(VarId(0)), Term::Var(VarId(1))] },
                Atom {
                    rel: rid(&s, "s"),
                    terms: vec![Term::Var(VarId(1)), Term::Const(Value::Int(5))],
                },
            ],
            vec!["x".into(), "y".into()],
        )
        .unwrap();
        assert_eq!(q.num_vars(), 2);
        assert!(!q.is_boolean());
        assert_eq!(q.join_count(), 1);
        assert_eq!(q.constant_count(), 1);
        assert_eq!(q.body_vars().len(), 2);
    }

    #[test]
    fn unsafe_head_is_rejected() {
        let s = schema();
        let err = ConjunctiveQuery::new(
            "Q",
            vec![VarId(1)],
            vec![Atom { rel: rid(&s, "r"), terms: vec![Term::Var(VarId(0)), Term::Var(VarId(0))] }],
            vec!["x".into(), "y".into()],
        );
        assert!(err.is_err());
    }

    #[test]
    fn empty_body_is_rejected() {
        let err = ConjunctiveQuery::new("Q", vec![], vec![], vec![]);
        assert!(err.is_err());
    }

    #[test]
    fn boolean_projection_drops_head() {
        let s = schema();
        let q = ConjunctiveQuery::new(
            "Q",
            vec![VarId(0)],
            vec![Atom { rel: rid(&s, "r"), terms: vec![Term::Var(VarId(0)), Term::Var(VarId(1))] }],
            vec!["x".into(), "y".into()],
        )
        .unwrap();
        let b = q.boolean();
        assert!(b.is_boolean());
        assert_eq!(b.atoms, q.atoms);
    }

    #[test]
    fn join_count_counts_shared_occurrences() {
        let s = schema();
        // x shared by three atoms: 2 joins; y in one atom: 0 joins.
        let mk_atom = |rel| Atom { rel, terms: vec![Term::Var(VarId(0)), Term::Var(VarId(1))] };
        let q = ConjunctiveQuery::new(
            "Q",
            vec![],
            vec![mk_atom(rid(&s, "r")), mk_atom(rid(&s, "s")), mk_atom(rid(&s, "r"))],
            vec!["x".into(), "y".into()],
        )
        .unwrap();
        assert_eq!(q.join_count(), 2 + 2);
    }

    #[test]
    fn display_renders_surface_syntax() {
        let s = schema();
        let q = ConjunctiveQuery::new(
            "Q",
            vec![VarId(0)],
            vec![Atom {
                rel: rid(&s, "r"),
                terms: vec![Term::Var(VarId(0)), Term::Const(Value::str("hi"))],
            }],
            vec!["x".into()],
        )
        .unwrap();
        assert_eq!(q.display(&s).to_string(), "Q(x) :- r(x, 'hi')");
    }
}
