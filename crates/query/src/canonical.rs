//! Canonical forms for conjunctive queries.
//!
//! Two CQs that differ only in variable names and atom order have the same
//! homomorphisms into every database, hence byte-identical `(H, B)`
//! synopses — so a synopsis cache keyed on literal query text misses
//! exactly the repeats that generated workloads (SQG, DQG) produce. This
//! module computes a *canonical form*: a deterministic representative of a
//! query's α-equivalence class, with a stable textual rendering and an FNV
//! fingerprint suitable as a cache key.
//!
//! The canonical form is obtained by a canonical labeling of the query's
//! atom/variable incidence structure:
//!
//! 1. **Initial coloring.** Head variables are pinned by their head
//!    positions (the head is an ordered tuple: `Q(x, y)` and `Q(y, x)`
//!    answer with transposed tuples, so head order is semantics). All
//!    existential variables start in one color class.
//! 2. **Iterative refinement.** Each variable's color is refined by the
//!    sorted multiset of its occurrences — (relation, argument position,
//!    surrounding term pattern rendered with current colors) — until the
//!    partition stabilizes, exactly the 1-dimensional Weisfeiler–Leman
//!    step specialized to hypergraph incidences.
//! 3. **Individualization.** If a color class with several variables
//!    remains, each member is individualized in turn and the refinement
//!    recursed; the lexicographically smallest resulting encoding wins.
//!    Siblings whose transposition is an automorphism of the colored query
//!    are pruned (they provably lead to the same minimum), which collapses
//!    the factorial blow-up on fully symmetric queries to a linear walk.
//!
//! Finally variables are renamed `x0, x1, …` by color rank, atoms are
//! sorted by their canonical encoding, and *exact duplicate atoms are
//! dropped* (CQ bodies are sets: `R(x, y), R(x, y)` ≡ `R(x, y)`).
//!
//! ```
//! use cqa_query::parse;
//! use cqa_storage::{ColumnType::*, Schema};
//!
//! let schema = Schema::builder()
//!     .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
//!     .relation("dept", &[("dname", Str), ("floor", Int)], Some(1))
//!     .build();
//!
//! // The same query, written with shuffled atoms and renamed variables.
//! let a = parse(&schema, "Q(n) :- employee(i, n, d), dept(d, 2)")?;
//! let b = parse(&schema, "Q(who) :- dept(where, 2), employee(badge, who, where)")?;
//! assert_eq!(a.canonical_form(), b.canonical_form());
//! assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
//!
//! // Projection order is semantics, so it changes the canonical form.
//! let c = parse(&schema, "Q(d, n) :- employee(i, n, d)")?;
//! let d = parse(&schema, "Q(n, d) :- employee(i, n, d)")?;
//! assert_ne!(c.canonical_fingerprint(), d.canonical_fingerprint());
//! # Ok::<(), cqa_common::CqaError>(())
//! ```

use crate::ast::{Atom, ConjunctiveQuery, Term, VarId};
use crate::parser::{lex, Tok};
use cqa_common::{fnv1a64, CqaError, Mt64, Result};
use cqa_storage::{RelId, Schema, Value};
use std::fmt;

/// A term of a canonical atom: a canonically numbered variable or a
/// constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CanonicalTerm {
    /// Variable `x<n>` in the canonical numbering.
    Var(u32),
    /// A constant value, unchanged by canonicalization.
    Const(Value),
}

/// An atom of a canonical query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalAtom {
    /// The relation.
    pub rel: RelId,
    /// Canonical terms, one per column.
    pub terms: Vec<CanonicalTerm>,
}

/// The canonical representative of a query's α-equivalence class.
///
/// Two queries produce equal `CanonicalQuery` values (and hence equal
/// [`fingerprint`](CanonicalQuery::fingerprint)s) iff they are the same CQ
/// up to variable renaming, body-atom order, and duplicate body atoms. The
/// query's display name is deliberately *not* part of the form.
///
/// Built by [`ConjunctiveQuery::canonical_form`]; see the [module
/// docs](self) for the construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalQuery {
    head: Vec<u32>,
    atoms: Vec<CanonicalAtom>,
    num_vars: u32,
    fingerprint: u64,
}

impl CanonicalQuery {
    /// Answer variables, in head order, as canonical variable numbers.
    pub fn head(&self) -> &[u32] {
        &self.head
    }

    /// Body atoms, sorted by canonical encoding, duplicates removed.
    pub fn atoms(&self) -> &[CanonicalAtom] {
        &self.atoms
    }

    /// Number of distinct variables occurring in the body.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// FNV-1a fingerprint of the injective byte encoding of this form.
    ///
    /// Equal for α-equivalent queries by construction; distinct canonical
    /// forms collide only with ordinary 64-bit-hash probability.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// A stable, schema-independent rendering: variables are `x0, x1, …`,
    /// relations are `r<id>`, e.g. `Q(x0) :- r1(x0, 2), r4(x0, x1)`.
    pub fn text(&self) -> String {
        let term = |t: &CanonicalTerm| match t {
            CanonicalTerm::Var(v) => format!("x{v}"),
            CanonicalTerm::Const(c) => c.to_string(),
        };
        let mut s = String::from("Q(");
        s.push_str(&self.head.iter().map(|v| format!("x{v}")).collect::<Vec<_>>().join(", "));
        s.push_str(") :- ");
        let atoms: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                format!("r{}({})", a.rel.0, a.terms.iter().map(term).collect::<Vec<_>>().join(", "))
            })
            .collect();
        s.push_str(&atoms.join(", "));
        s
    }

    /// Renders the canonical form in the surface syntax against a schema
    /// (relation names instead of `r<id>`).
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        CanonicalDisplay { q: self, schema }
    }

    /// The injective byte encoding the fingerprint hashes: every field is
    /// length- or tag-prefixed, so distinct canonical forms encode to
    /// distinct byte strings.
    fn encode(head: &[u32], atoms: &[CanonicalAtom]) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + atoms.len() * 16);
        out.extend_from_slice(&(head.len() as u32).to_be_bytes());
        for &v in head {
            out.extend_from_slice(&v.to_be_bytes());
        }
        out.extend_from_slice(&(atoms.len() as u32).to_be_bytes());
        for atom in atoms {
            out.extend_from_slice(&encode_atom(atom));
        }
        out
    }
}

struct CanonicalDisplay<'a> {
    q: &'a CanonicalQuery,
    schema: &'a Schema,
}

impl fmt::Display for CanonicalDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q(")?;
        for (i, v) in self.q.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "x{v}")?;
        }
        write!(f, ") :- ")?;
        for (i, atom) in self.q.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", self.schema.relation(atom.rel).name)?;
            for (j, t) in atom.terms.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                match t {
                    CanonicalTerm::Var(v) => write!(f, "x{v}")?,
                    CanonicalTerm::Const(c) => write!(f, "{c}")?,
                }
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Injective byte encoding of one canonical atom.
fn encode_atom(atom: &CanonicalAtom) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + atom.terms.len() * 5);
    out.extend_from_slice(&atom.rel.0.to_be_bytes());
    for t in &atom.terms {
        match t {
            CanonicalTerm::Var(v) => {
                out.push(0);
                out.extend_from_slice(&v.to_be_bytes());
            }
            CanonicalTerm::Const(Value::Int(i)) => {
                out.push(1);
                // Flip the sign bit so byte order matches numeric order.
                out.extend_from_slice(&((*i as u64) ^ (1 << 63)).to_be_bytes());
            }
            CanonicalTerm::Const(Value::Str(s)) => {
                out.push(2);
                out.extend_from_slice(&(s.len() as u32).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

impl ConjunctiveQuery {
    /// Computes the canonical representative of this query's α-equivalence
    /// class. See the [module docs](self) for the algorithm; cost is one
    /// color refinement (linear in occurrences per round) for typical
    /// queries, with automorphism-pruned branching on symmetric ones.
    pub fn canonical_form(&self) -> CanonicalQuery {
        Canonicalizer::new(self).run()
    }

    /// Shorthand for `self.canonical_form().fingerprint()`.
    pub fn canonical_fingerprint(&self) -> u64 {
        self.canonical_form().fingerprint()
    }
}

/// The canonical-labeling search state over one query.
struct Canonicalizer<'a> {
    q: &'a ConjunctiveQuery,
    /// Distinct variables occurring in the body (head ⊆ body by safety).
    occurring: Vec<VarId>,
    /// Dense index into `occurring` for each original var id (usize::MAX
    /// for variables that never occur — they carry no semantics).
    dense: Vec<usize>,
}

impl<'a> Canonicalizer<'a> {
    fn new(q: &'a ConjunctiveQuery) -> Self {
        let mut seen = vec![false; q.num_vars()];
        for atom in &q.atoms {
            for v in atom.vars() {
                seen[v.idx()] = true;
            }
        }
        let occurring: Vec<VarId> =
            (0..q.num_vars() as u32).map(VarId).filter(|v| seen[v.idx()]).collect();
        let mut dense = vec![usize::MAX; q.num_vars()];
        for (i, v) in occurring.iter().enumerate() {
            dense[v.idx()] = i;
        }
        Canonicalizer { q, occurring, dense }
    }

    fn run(&self) -> CanonicalQuery {
        let n = self.occurring.len();
        // Initial colors: head variables are singletons keyed by their
        // (sorted) head positions; existential variables share one class.
        let mut keys: Vec<Vec<u8>> = vec![Vec::new(); n];
        for (i, v) in self.occurring.iter().enumerate() {
            let positions: Vec<usize> =
                self.q.head.iter().enumerate().filter(|(_, h)| *h == v).map(|(p, _)| p).collect();
            let key = &mut keys[i];
            key.push(if positions.is_empty() { 1 } else { 0 });
            for p in positions {
                key.extend_from_slice(&(p as u32).to_be_bytes());
            }
        }
        let colors = rank_by_key(&keys);
        let (_, best) = self.search(colors);
        best
    }

    /// Refines `colors`, then either finishes (discrete partition) or
    /// branches over the first ambiguous class. Returns the minimal
    /// encoding and the canonical query achieving it.
    fn search(&self, mut colors: Vec<u32>) -> (Vec<u8>, CanonicalQuery) {
        self.refine(&mut colors);
        let Some(cell) = self.first_non_singleton(&colors) else {
            let q = self.build(&colors);
            return (CanonicalQuery::encode(&q.head, &q.atoms), q);
        };
        let mut best: Option<(Vec<u8>, CanonicalQuery)> = None;
        let mut explored: Vec<usize> = Vec::new();
        for &v in &cell {
            // An explored sibling whose transposition with `v` is an
            // automorphism reaches the same minimum; skip the branch.
            if explored.iter().any(|&u| self.swap_is_automorphism(u, v, &colors)) {
                continue;
            }
            explored.push(v);
            let mut branch = colors.iter().map(|&c| c * 2 + 1).collect::<Vec<u32>>();
            branch[v] -= 1; // individualize: v sorts just below its class
            let cand = self.search(branch);
            best = match best {
                Some(b) if b.0 <= cand.0 => Some(b),
                _ => Some(cand),
            };
        }
        // cqa-lint: allow(no-panic-in-request-path): the target cell is non-singleton by the branch above, so at least one candidate was explored
        best.expect("non-singleton cell has at least one branch")
    }

    /// One-dimensional Weisfeiler–Leman refinement until stable.
    fn refine(&self, colors: &mut Vec<u32>) {
        let n = self.occurring.len();
        loop {
            let distinct = colors.iter().max().map_or(0, |m| m + 1);
            if distinct as usize == n {
                return; // discrete
            }
            let mut sigs: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
            // Occurrence signature: for every atom, its pattern rendered
            // with current colors; a variable collects (pattern, position)
            // for each of its occurrences.
            for atom in &self.q.atoms {
                let pattern = self.atom_pattern(atom, colors);
                for (pos, t) in atom.terms.iter().enumerate() {
                    if let Term::Var(v) = t {
                        let mut occ = pattern.clone();
                        occ.extend_from_slice(&(pos as u32).to_be_bytes());
                        sigs[self.dense[v.idx()]].push(occ);
                    }
                }
            }
            let keys: Vec<Vec<u8>> = (0..n)
                .map(|i| {
                    let mut key = colors[i].to_be_bytes().to_vec();
                    let mut occ = std::mem::take(&mut sigs[i]);
                    occ.sort_unstable();
                    for o in occ {
                        key.extend_from_slice(&(o.len() as u32).to_be_bytes());
                        key.extend_from_slice(&o);
                    }
                    key
                })
                .collect();
            let next = rank_by_key(&keys);
            if next == *colors {
                return;
            }
            *colors = next;
        }
    }

    /// The atom's term pattern under a coloring (constants verbatim,
    /// variables by color).
    fn atom_pattern(&self, atom: &Atom, colors: &[u32]) -> Vec<u8> {
        let canon = CanonicalAtom {
            rel: atom.rel,
            terms: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => CanonicalTerm::Var(colors[self.dense[v.idx()]]),
                    Term::Const(c) => CanonicalTerm::Const(c.clone()),
                })
                .collect(),
        };
        encode_atom(&canon)
    }

    /// Members (dense indices) of the smallest-colored class of size > 1.
    fn first_non_singleton(&self, colors: &[u32]) -> Option<Vec<usize>> {
        let distinct = colors.iter().max().map_or(0, |m| m + 1);
        for c in 0..distinct {
            let members: Vec<usize> = (0..colors.len()).filter(|&i| colors[i] == c).collect();
            if members.len() > 1 {
                return Some(members);
            }
        }
        None
    }

    /// Whether exchanging variables `u` and `v` (dense indices, same
    /// color) maps the body-atom multiset to itself.
    fn swap_is_automorphism(&self, u: usize, v: usize, _colors: &[u32]) -> bool {
        let swap = |t: &Term| -> CanonicalTerm {
            match t {
                Term::Var(w) => {
                    let i = self.dense[w.idx()];
                    let i = if i == u {
                        v
                    } else if i == v {
                        u
                    } else {
                        i
                    };
                    CanonicalTerm::Var(i as u32)
                }
                Term::Const(c) => CanonicalTerm::Const(c.clone()),
            }
        };
        let ident = |t: &Term| -> CanonicalTerm {
            match t {
                Term::Var(w) => CanonicalTerm::Var(self.dense[w.idx()] as u32),
                Term::Const(c) => CanonicalTerm::Const(c.clone()),
            }
        };
        let encode_with = |f: &dyn Fn(&Term) -> CanonicalTerm| -> Vec<Vec<u8>> {
            let mut atoms: Vec<Vec<u8>> = self
                .q
                .atoms
                .iter()
                .map(|a| {
                    encode_atom(&CanonicalAtom {
                        rel: a.rel,
                        terms: a.terms.iter().map(f).collect(),
                    })
                })
                .collect();
            atoms.sort_unstable();
            atoms
        };
        encode_with(&swap) == encode_with(&ident)
    }

    /// Builds the canonical query from a discrete coloring: variables are
    /// renamed by color, atoms sorted, exact duplicates dropped.
    fn build(&self, colors: &[u32]) -> CanonicalQuery {
        let canon_var = |v: VarId| colors[self.dense[v.idx()]];
        let head: Vec<u32> = self.q.head.iter().map(|&v| canon_var(v)).collect();
        let mut atoms: Vec<CanonicalAtom> = self
            .q
            .atoms
            .iter()
            .map(|a| CanonicalAtom {
                rel: a.rel,
                terms: a
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => CanonicalTerm::Var(canon_var(*v)),
                        Term::Const(c) => CanonicalTerm::Const(c.clone()),
                    })
                    .collect(),
            })
            .collect();
        atoms.sort_unstable_by_key(encode_atom);
        atoms.dedup();
        let fingerprint = fnv1a64(&CanonicalQuery::encode(&head, &atoms));
        CanonicalQuery { head, atoms, num_vars: self.occurring.len() as u32, fingerprint }
    }
}

/// Ranks byte keys: equal keys share a rank, ranks follow sort order.
fn rank_by_key(keys: &[Vec<u8>]) -> Vec<u32> {
    let mut sorted: Vec<&Vec<u8>> = keys.iter().collect();
    sorted.sort_unstable();
    sorted.dedup();
    // cqa-lint: allow(no-panic-in-request-path): every key searched for was inserted into `sorted` two lines up
    keys.iter().map(|k| sorted.binary_search(&k).expect("key is present") as u32).collect()
}

/// Rewrites a query in the surface syntax with shuffled body-atom order
/// and fresh variable names — an α-equivalent variant with different
/// literal text.
///
/// This is the load-generator side of canonicalization: `cqa-cli
/// bench-serve --permute-queries` uses it to issue structurally identical
/// queries under ever-changing spellings, so a literal-text cache key
/// misses while the canonical key hits. Works purely on the text (no
/// schema needed); errors on text that is not a well-formed CQ.
///
/// ```
/// use cqa_common::Mt64;
/// let mut rng = Mt64::new(7);
/// let p = cqa_query::permute_query_text("Q(n) :- emp(i, n, d), dept(d, 2)", &mut rng).unwrap();
/// assert_ne!(p, "Q(n) :- emp(i, n, d), dept(d, 2)");
/// assert!(p.starts_with("Q("));
/// ```
pub fn permute_query_text(text: &str, rng: &mut Mt64) -> Result<String> {
    let toks = lex(text)?;
    let mut pos = 0usize;
    let next = |pos: &mut usize| -> Result<Tok> {
        let t = toks
            .get(*pos)
            .cloned()
            .ok_or_else(|| CqaError::Parse("unexpected end of query".into()))?;
        *pos += 1;
        Ok(t)
    };
    let expect = |pos: &mut usize, want: Tok| -> Result<()> {
        let got = next(pos)?;
        if got == want {
            Ok(())
        } else {
            Err(CqaError::Parse(format!("expected {want:?}, got {got:?}")))
        }
    };

    // Head: name '(' vars? ')' ':-'.
    let name = match next(&mut pos)? {
        Tok::Ident(n) => n,
        t => return Err(CqaError::Parse(format!("expected query name, got {t:?}"))),
    };
    expect(&mut pos, Tok::LParen)?;
    let mut head: Vec<String> = Vec::new();
    if toks.get(pos) == Some(&Tok::RParen) {
        pos += 1;
    } else {
        loop {
            match next(&mut pos)? {
                Tok::Ident(v) => head.push(v),
                t => return Err(CqaError::Parse(format!("head terms must be variables: {t:?}"))),
            }
            match next(&mut pos)? {
                Tok::Comma => continue,
                Tok::RParen => break,
                t => return Err(CqaError::Parse(format!("expected ',' or ')', got {t:?}"))),
            }
        }
    }
    expect(&mut pos, Tok::ColonDash)?;

    // Body: rel '(' term (',' term)* ')' atoms. Terms keep their lexed
    // form; identifiers at term positions are variables.
    let mut atoms: Vec<(String, Vec<Tok>)> = Vec::new();
    loop {
        let rel = match next(&mut pos)? {
            Tok::Ident(n) => n,
            t => return Err(CqaError::Parse(format!("expected relation name, got {t:?}"))),
        };
        expect(&mut pos, Tok::LParen)?;
        let mut terms = Vec::new();
        loop {
            match next(&mut pos)? {
                t @ (Tok::Ident(_) | Tok::Int(_) | Tok::Str(_)) => terms.push(t),
                t => return Err(CqaError::Parse(format!("expected term, got {t:?}"))),
            }
            match next(&mut pos)? {
                Tok::Comma => continue,
                Tok::RParen => break,
                t => return Err(CqaError::Parse(format!("expected ',' or ')', got {t:?}"))),
            }
        }
        atoms.push((rel, terms));
        match toks.get(pos) {
            Some(Tok::Comma) => pos += 1,
            None => break,
            Some(t) => return Err(CqaError::Parse(format!("expected ',' or end, got {t:?}"))),
        }
    }

    // Fresh names: variable k (in first-occurrence order) becomes
    // `pv<perm[k]>` for a random permutation, and atoms are shuffled.
    let mut vars: Vec<String> = Vec::new();
    let mut note = |v: &str| {
        if !vars.iter().any(|w| w == v) {
            vars.push(v.to_owned());
        }
    };
    for v in &head {
        note(v);
    }
    for (_, terms) in &atoms {
        for t in terms {
            if let Tok::Ident(v) = t {
                note(v);
            }
        }
    }
    let mut perm: Vec<usize> = (0..vars.len()).collect();
    rng.shuffle(&mut perm);
    let rename = |v: &str| -> String {
        let k = vars.iter().position(|w| w == v).expect("variable was collected");
        format!("pv{}", perm[k])
    };
    rng.shuffle(&mut atoms);

    let term_text = |t: &Tok| -> String {
        match t {
            Tok::Ident(v) => rename(v),
            Tok::Int(i) => i.to_string(),
            Tok::Str(s) => format!("'{s}'"),
            other => unreachable!("non-term token {other:?} in term position"),
        }
    };
    let body: Vec<String> = atoms
        .iter()
        .map(|(rel, terms)| {
            format!("{rel}({})", terms.iter().map(term_text).collect::<Vec<_>>().join(", "))
        })
        .collect();
    Ok(format!(
        "{name}({}) :- {}",
        head.iter().map(|v| rename(v)).collect::<Vec<_>>().join(", "),
        body.join(", ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use cqa_storage::ColumnType::*;

    fn schema() -> Schema {
        Schema::builder()
            .relation("r", &[("a", Int), ("b", Int)], Some(1))
            .relation("s", &[("c", Int), ("d", Str)], Some(1))
            .relation("t", &[("e", Int)], Some(1))
            .build()
    }

    fn fp(s: &Schema, q: &str) -> u64 {
        parse(s, q).unwrap().canonical_fingerprint()
    }

    #[test]
    fn alpha_equivalent_queries_share_a_form() {
        let s = schema();
        let a = parse(&s, "Q(x) :- r(x, y), s(y, 'hi')").unwrap();
        let b = parse(&s, "P(k) :- s(m, 'hi'), r(k, m)").unwrap();
        assert_eq!(a.canonical_form(), b.canonical_form());
        assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    #[test]
    fn query_name_is_not_part_of_the_form() {
        let s = schema();
        assert_eq!(fp(&s, "Q() :- t(x)"), fp(&s, "Zebra() :- t(x)"));
    }

    #[test]
    fn head_order_is_semantics() {
        let s = schema();
        assert_ne!(fp(&s, "Q(a, b) :- r(a, b)"), fp(&s, "Q(b, a) :- r(a, b)"));
    }

    #[test]
    fn constants_distinguish_queries() {
        let s = schema();
        assert_ne!(fp(&s, "Q() :- r(x, 1)"), fp(&s, "Q() :- r(x, 2)"));
        assert_ne!(fp(&s, "Q() :- s(x, 'a')"), fp(&s, "Q() :- s(x, 'b')"));
        assert_ne!(fp(&s, "Q() :- r(x, 1)"), fp(&s, "Q() :- r(x, y)"));
    }

    #[test]
    fn relations_distinguish_queries() {
        let s = schema();
        assert_ne!(fp(&s, "Q() :- r(x, y)"), fp(&s, "Q() :- s(x, y)"));
    }

    #[test]
    fn duplicate_atoms_collapse() {
        let s = schema();
        assert_eq!(fp(&s, "Q() :- r(x, y), r(x, y)"), fp(&s, "Q() :- r(x, y)"));
        // Same relation with *different* variables does not collapse.
        assert_ne!(fp(&s, "Q() :- r(x, y), r(y, x)"), fp(&s, "Q() :- r(x, y)"));
    }

    #[test]
    fn join_structure_is_preserved() {
        let s = schema();
        // x joined across atoms vs. two independent atoms.
        assert_ne!(fp(&s, "Q() :- r(x, y), s(x, w)"), fp(&s, "Q() :- r(x, y), s(z, w)"));
    }

    #[test]
    fn symmetric_queries_canonicalize_fast_and_consistently() {
        let s = schema();
        // 12 fully interchangeable existential variables: factorial
        // branching without automorphism pruning.
        let many = |names: &[&str]| {
            let body = names.iter().map(|n| format!("t({n})")).collect::<Vec<_>>().join(", ");
            format!("Q() :- {body}")
        };
        let a = many(&["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"]);
        let b = many(&["l", "k", "j", "i", "h", "g", "f", "e", "d", "c", "b", "a"]);
        assert_eq!(fp(&s, &a), fp(&s, &b));
        // All those atoms are α-duplicates of each other.
        let c = parse(&s, &a).unwrap().canonical_form();
        assert_eq!(c.atoms().len(), 12);
        assert_eq!(c.num_vars(), 12);
    }

    #[test]
    fn cyclic_symmetry_is_resolved_consistently() {
        let s = schema();
        // A 3-cycle of r-atoms: rotations are automorphisms, and every
        // variable looks locally identical.
        let a = fp(&s, "Q() :- r(x, y), r(y, z), r(z, x)");
        let b = fp(&s, "Q() :- r(z, x), r(x, y), r(y, z)");
        let c = fp(&s, "Q() :- r(b, c), r(a, b), r(c, a)");
        assert_eq!(a, b);
        assert_eq!(a, c);
        // The 3-cycle differs from the 2-cycle plus self-loop.
        assert_ne!(a, fp(&s, "Q() :- r(x, y), r(y, x), r(z, z)"));
    }

    #[test]
    fn text_rendering_is_stable_and_readable() {
        let s = schema();
        let a = parse(&s, "Q(x) :- r(x, y), s(y, 'hi')").unwrap().canonical_form();
        let b = parse(&s, "P(k) :- s(m, 'hi'), r(k, m)").unwrap().canonical_form();
        assert_eq!(a.text(), b.text());
        assert_eq!(a.text(), "Q(x0) :- r0(x0, x1), r1(x1, 'hi')");
        assert_eq!(a.display(&s).to_string(), "Q(x0) :- r(x0, x1), s(x1, 'hi')");
    }

    #[test]
    fn unused_head_names_do_not_change_the_form() {
        let s = schema();
        // Same query via the AST with an extra never-used variable name.
        let q1 = ConjunctiveQuery::new(
            "Q",
            vec![VarId(0)],
            vec![Atom { rel: s.rel_id("t").unwrap(), terms: vec![Term::Var(VarId(0))] }],
            vec!["x".into()],
        )
        .unwrap();
        let q2 = ConjunctiveQuery::new(
            "Q",
            vec![VarId(0)],
            vec![Atom { rel: s.rel_id("t").unwrap(), terms: vec![Term::Var(VarId(0))] }],
            vec!["x".into(), "ghost".into()],
        )
        .unwrap();
        assert_eq!(q1.canonical_fingerprint(), q2.canonical_fingerprint());
    }

    #[test]
    fn permuted_text_stays_alpha_equivalent() {
        let s = schema();
        let text = "Q(x, w) :- r(x, y), s(y, 'hi'), r(x, w), t(9)";
        let base = parse(&s, text).unwrap();
        let mut rng = Mt64::new(3);
        let mut distinct_texts = std::collections::HashSet::new();
        for _ in 0..20 {
            let permuted = permute_query_text(text, &mut rng).unwrap();
            distinct_texts.insert(permuted.clone());
            let q = parse(&s, &permuted).unwrap();
            assert_eq!(
                q.canonical_fingerprint(),
                base.canonical_fingerprint(),
                "permutation changed the query: {permuted}"
            );
        }
        assert!(distinct_texts.len() > 5, "permuter barely varies the text");
    }

    #[test]
    fn permuter_rejects_garbage() {
        let mut rng = Mt64::new(1);
        for bad in ["", "Q(x)", "Q(x) :- ", "Q(1) :- r(x, y)", "Q(x) :- r(x", "r(x, y)"] {
            assert!(permute_query_text(bad, &mut rng).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn permuter_preserves_boolean_and_constants() {
        let mut rng = Mt64::new(5);
        let p = permute_query_text("Q() :- s(x, 'a b'), r(x, -3)", &mut rng).unwrap();
        assert!(p.contains("'a b'"), "{p}");
        assert!(p.contains("-3"), "{p}");
        assert!(p.starts_with("Q()"), "{p}");
    }
}
