//! Cross-checks the optimized join engine against a naive reference
//! evaluator on randomized queries and databases.
//!
//! The reference enumerates the full cartesian product of candidate rows
//! per atom and filters — hopeless for real data, perfect as an oracle.

use cqa_common::Mt64;
use cqa_query::{homomorphisms, Atom, ConjunctiveQuery, EvalOptions, Term, VarId};
use cqa_storage::{ColumnType::*, Database, Datum, Schema, Value};
use std::collections::BTreeSet;

/// Naive evaluation: nested loops over every row combination.
fn naive_homs(db: &Database, q: &ConjunctiveQuery) -> BTreeSet<(Vec<Datum>, Vec<u32>)> {
    fn rec(
        db: &Database,
        q: &ConjunctiveQuery,
        depth: usize,
        binding: &mut Vec<Option<Datum>>,
        rows: &mut Vec<u32>,
        out: &mut BTreeSet<(Vec<Datum>, Vec<u32>)>,
    ) {
        if depth == q.atoms.len() {
            let b: Vec<Datum> = binding.iter().map(|o| o.expect("safe query")).collect();
            out.insert((b, rows.clone()));
            return;
        }
        let atom = &q.atoms[depth];
        let table = db.table(atom.rel);
        for i in 0..table.len() as u32 {
            let row = table.row(i);
            let saved = binding.clone();
            let mut ok = true;
            for (pos, t) in atom.terms.iter().enumerate() {
                match t {
                    Term::Const(v) => {
                        if db.lookup_value(v) != Some(row[pos]) {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match binding[v.idx()] {
                        Some(d) if d != row[pos] => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => binding[v.idx()] = Some(row[pos]),
                    },
                }
            }
            if ok {
                rows.push(i);
                rec(db, q, depth + 1, binding, rows, out);
                rows.pop();
            }
            *binding = saved;
        }
    }
    let mut out = BTreeSet::new();
    let mut binding = vec![None; q.num_vars()];
    rec(db, q, 0, &mut binding, &mut Vec::new(), &mut out);
    out
}

fn random_db(rng: &mut Mt64) -> Database {
    let schema = Schema::builder()
        .relation("r", &[("a", Int), ("b", Int)], Some(1))
        .relation("s", &[("c", Int), ("d", Int), ("e", Int)], Some(1))
        .relation("t", &[("f", Int)], None)
        .build();
    let mut db = Database::new(schema);
    let n = 2 + rng.index(8);
    for _ in 0..n {
        db.insert_named("r", &[Value::Int(rng.below(4) as i64), Value::Int(rng.below(4) as i64)])
            .unwrap();
        db.insert_named(
            "s",
            &[
                Value::Int(rng.below(4) as i64),
                Value::Int(rng.below(4) as i64),
                Value::Int(rng.below(4) as i64),
            ],
        )
        .unwrap();
        db.insert_named("t", &[Value::Int(rng.below(4) as i64)]).unwrap();
    }
    db
}

fn random_query(rng: &mut Mt64, db: &Database) -> ConjunctiveQuery {
    let schema = db.schema();
    let n_atoms = 1 + rng.index(3);
    // Up to 4 variables shared freely across positions; occasional consts.
    let n_vars = 1 + rng.index(4);
    let var_names: Vec<String> = (0..n_vars).map(|i| format!("v{i}")).collect();
    let mut atoms = Vec::new();
    for _ in 0..n_atoms {
        let rel = cqa_storage::RelId(rng.index(schema.len()) as u32);
        let arity = schema.relation(rel).arity();
        let terms: Vec<Term> = (0..arity)
            .map(|_| {
                if rng.bernoulli(0.2) {
                    Term::Const(Value::Int(rng.below(4) as i64))
                } else {
                    Term::Var(VarId(rng.index(n_vars) as u32))
                }
            })
            .collect();
        atoms.push(Atom { rel, terms });
    }
    // Head: the variables that occur in the body (safety), maybe projected.
    let mut body_vars: Vec<VarId> = Vec::new();
    for a in &atoms {
        for v in a.vars() {
            if !body_vars.contains(&v) {
                body_vars.push(v);
            }
        }
    }
    // Some queries have no variables at all (all constants): skip those by
    // retrying at the call site.
    let k = if body_vars.is_empty() { 0 } else { rng.index(body_vars.len() + 1) };
    let head: Vec<VarId> = body_vars.into_iter().take(k).collect();
    ConjunctiveQuery::new("Q", head, atoms, var_names).expect("safe by construction")
}

#[test]
fn optimized_engine_matches_naive_reference() {
    let mut rng = Mt64::new(123456);
    let mut checked = 0;
    while checked < 150 {
        let db = random_db(&mut rng);
        let q = random_query(&mut rng, &db);
        // The naive oracle assumes every variable gets bound (safe query
        // whose vars all occur); random queries may leave declared vars
        // unused — normalize by skipping those.
        let used: BTreeSet<VarId> = q.body_vars();
        if used.len() != q.num_vars() {
            continue;
        }
        let fast: BTreeSet<(Vec<Datum>, Vec<u32>)> = homomorphisms(&db, &q, EvalOptions::default())
            .unwrap()
            .into_iter()
            .map(|h| (h.binding, h.facts))
            .collect();
        let slow = naive_homs(&db, &q);
        assert_eq!(
            fast,
            slow,
            "engines disagree on {} over {} facts",
            q.display(db.schema()),
            db.fact_count()
        );
        checked += 1;
    }
}

#[test]
fn engine_agrees_on_answers_too() {
    let mut rng = Mt64::new(654321);
    let mut checked = 0;
    while checked < 60 {
        let db = random_db(&mut rng);
        let q = random_query(&mut rng, &db);
        let used: BTreeSet<VarId> = q.body_vars();
        if used.len() != q.num_vars() || q.head.is_empty() {
            continue;
        }
        let fast: BTreeSet<Vec<Datum>> = cqa_query::answers(&db, &q).unwrap().into_iter().collect();
        let slow: BTreeSet<Vec<Datum>> = naive_homs(&db, &q)
            .into_iter()
            .map(|(b, _)| q.head.iter().map(|v| b[v.idx()]).collect())
            .collect();
        assert_eq!(fast, slow, "answers disagree on {}", q.display(db.schema()));
        checked += 1;
    }
}
