//! Log-space non-negative numbers.
//!
//! The repair count `|rep(D, Σ)|` is a product of block sizes over the whole
//! database and the symbolic-space size `|S•|` can exceed `f64::MAX` by
//! thousands of orders of magnitude. Every quantity the approximation
//! schemes *compute with* is a small ratio, but the harness still reports
//! the raw counts, so we carry them as natural logarithms.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Div, Mul};

/// A non-negative real stored as its natural logarithm.
///
/// `LogNum::ZERO` is represented by `ln = -inf`, so products and ratios
/// behave as expected without special cases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNum {
    ln: f64,
}

impl LogNum {
    /// The number 0.
    pub const ZERO: LogNum = LogNum { ln: f64::NEG_INFINITY };
    /// The number 1.
    pub const ONE: LogNum = LogNum { ln: 0.0 };

    /// Wraps a plain non-negative value.
    pub fn from_value(v: f64) -> Self {
        assert!(v >= 0.0, "LogNum must be non-negative, got {v}");
        LogNum { ln: v.ln() }
    }

    /// Wraps an integer count.
    pub fn from_count(n: u64) -> Self {
        Self::from_value(n as f64)
    }

    /// Constructs from a natural logarithm directly.
    pub fn from_ln(ln: f64) -> Self {
        assert!(!ln.is_nan(), "LogNum cannot be NaN");
        LogNum { ln }
    }

    /// Natural logarithm of the value (`-inf` for zero).
    #[inline]
    pub fn ln(self) -> f64 {
        self.ln
    }

    /// Base-10 logarithm of the value.
    #[inline]
    pub fn log10(self) -> f64 {
        self.ln / std::f64::consts::LN_10
    }

    /// The plain value, saturating to `f64::INFINITY` when it does not fit.
    #[inline]
    pub fn value(self) -> f64 {
        self.ln.exp()
    }

    /// True when this represents 0.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.ln == f64::NEG_INFINITY
    }

    /// Log-sum-exp addition.
    #[allow(clippy::should_implement_trait)] // deliberate: `+` on log-space numbers reads as multiplication
    pub fn add(self, other: LogNum) -> LogNum {
        if self.is_zero() {
            return other;
        }
        if other.is_zero() {
            return self;
        }
        let (hi, lo) = if self.ln >= other.ln { (self.ln, other.ln) } else { (other.ln, self.ln) };
        LogNum { ln: hi + (lo - hi).exp().ln_1p() }
    }

    /// `self / other` as a plain `f64` ratio, usable when the ratio itself
    /// is of moderate magnitude even though both operands are astronomical.
    pub fn ratio(self, other: LogNum) -> f64 {
        if self.is_zero() && other.is_zero() {
            return f64::NAN;
        }
        (self.ln - other.ln).exp()
    }
}

impl Mul for LogNum {
    type Output = LogNum;
    fn mul(self, rhs: LogNum) -> LogNum {
        if self.is_zero() || rhs.is_zero() {
            LogNum::ZERO
        } else {
            LogNum { ln: self.ln + rhs.ln }
        }
    }
}

impl Div for LogNum {
    type Output = LogNum;
    fn div(self, rhs: LogNum) -> LogNum {
        assert!(!rhs.is_zero(), "division by LogNum zero");
        if self.is_zero() {
            LogNum::ZERO
        } else {
            LogNum { ln: self.ln - rhs.ln }
        }
    }
}

impl Product for LogNum {
    fn product<I: Iterator<Item = LogNum>>(iter: I) -> LogNum {
        iter.fold(LogNum::ONE, |a, b| a * b)
    }
}

impl Sum for LogNum {
    fn sum<I: Iterator<Item = LogNum>>(iter: I) -> LogNum {
        iter.fold(LogNum::ZERO, LogNum::add)
    }
}

impl PartialOrd for LogNum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.ln.partial_cmp(&other.ln)
    }
}

impl fmt::Display for LogNum {
    /// Renders as scientific notation, e.g. `3.16e+1423`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let l10 = self.log10();
        let exp = l10.floor();
        let mantissa = 10f64.powf(l10 - exp);
        write!(f, "{mantissa:.3}e{exp:+}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn products_of_block_sizes_do_not_overflow() {
        // 10_000 blocks of size 5: 5^10000 ≈ 10^6990.
        let total: LogNum = (0..10_000).map(|_| LogNum::from_count(5)).product();
        assert!((total.log10() - 10_000.0 * 5f64.log10()).abs() < 1e-6);
    }

    #[test]
    fn ratio_of_astronomical_numbers_is_finite() {
        let a: LogNum = (0..1000).map(|_| LogNum::from_count(4)).product();
        let b: LogNum =
            (0..1000).map(|_| LogNum::from_count(4)).product::<LogNum>() * LogNum::from_count(2);
        assert!((a.ratio(b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_is_absorbing_for_mul() {
        let z = LogNum::ZERO * LogNum::from_count(7);
        assert!(z.is_zero());
    }

    #[test]
    fn add_is_log_sum_exp() {
        let s = LogNum::from_count(3).add(LogNum::from_count(4));
        assert!((s.value() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn add_with_zero_is_identity() {
        let s = LogNum::ZERO.add(LogNum::from_count(9));
        assert!((s.value() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let s: LogNum = (1..=4u64).map(LogNum::from_count).sum();
        assert!((s.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ordering_matches_values() {
        assert!(LogNum::from_count(3) < LogNum::from_count(4));
        assert!(LogNum::ZERO < LogNum::from_count(1));
    }

    #[test]
    fn display_is_scientific() {
        let n: LogNum = (0..100).map(|_| LogNum::from_count(10)).product();
        let s = format!("{n}");
        // 10^100 may land on either side of the exponent boundary in
        // floating point; accept both renderings.
        assert!(s == "1.000e+100" || s == "10.000e+99", "got {s}");
        assert_eq!(format!("{}", LogNum::ZERO), "0");
        assert_eq!(format!("{}", LogNum::from_value(3.5)), "3.500e+0");
    }

    #[test]
    #[should_panic]
    fn division_by_zero_panics() {
        let _ = LogNum::ONE / LogNum::ZERO;
    }
}
