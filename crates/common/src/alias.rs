//! Walker's alias method for O(1) sampling from a fixed discrete
//! distribution.
//!
//! The symbolic-space samplers (`SampleKL`, `SampleKLM`) must repeatedly
//! draw an image index `i` with probability `|I^i| / |S•|`. The number of
//! draws is the (often large) iteration count computed by the optimal
//! estimator, so per-draw cost matters; the alias method pays O(n) once and
//! O(1) per draw thereafter.

use crate::mt::Mt64;

/// A preprocessed discrete distribution supporting O(1) weighted sampling.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// `prob[i]` is the probability of keeping column `i` rather than
    /// following its alias.
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weights must be finite, non-negative, and not all zero"
        );
        let n = weights.len();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Scaled probabilities: mean 1.
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}");
                w * n as f64 / total
            })
            .collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Whatever remains is (numerically) exactly 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no categories (never constructible; kept for
    /// API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index with its configured probability.
    #[inline]
    pub fn sample(&self, rng: &mut Mt64) -> usize {
        let i = rng.index(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = Mt64::new(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let freqs = empirical(&[1.0; 8], 200_000, 1);
        for f in freqs {
            assert!((f - 0.125).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let freqs = empirical(&w, 400_000, 2);
        let total: f64 = w.iter().sum();
        for (f, &wi) in freqs.iter().zip(&w) {
            assert!((f - wi / total).abs() < 0.01, "freq {f} for weight {wi}");
        }
    }

    #[test]
    fn zero_weight_category_never_sampled() {
        let freqs = empirical(&[0.0, 1.0, 0.0, 1.0], 50_000, 3);
        assert_eq!(freqs[0], 0.0);
        assert_eq!(freqs[2], 0.0);
    }

    #[test]
    fn single_category_always_sampled() {
        let freqs = empirical(&[42.0], 1000, 4);
        assert_eq!(freqs[0], 1.0);
    }

    #[test]
    fn extreme_weight_ratios_are_handled() {
        // Ratios like 1/|db(B_{H_i})| can span many orders of magnitude.
        let w = [1e-12, 1.0];
        let freqs = empirical(&w, 100_000, 5);
        assert!(freqs[0] < 0.001);
        assert!(freqs[1] > 0.999);
    }

    #[test]
    #[should_panic]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }
}
