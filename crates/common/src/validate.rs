//! Wire-input validators: the trust boundary between the NDJSON protocol
//! and the estimator core.
//!
//! Every numeric or string field read off the wire in `crates/server` is
//! *tainted* until it passes through one of the functions registered in
//! [`VALIDATORS`]. The `wire-input-taint` analysis in `cqa-lint` mirrors
//! this registry (the same way the fault-point and observability name
//! registries are mirrored) and statically tracks taint from the parse
//! sites to allocation sizes, loop bounds, and sample-count parameters —
//! so a new protocol field that skips validation fails the lint, not the
//! chaos harness three releases later.
//!
//! Contract: a validator either returns a value inside its documented
//! bounds or refuses the request with [`CqaError::Parse`]. Clamping
//! validators ([`capped_u64`]) never fail but guarantee an upper bound.
//! Keep the registry in sync with the functions below — `cqa-lint`
//! refuses to run against an empty registry, and names listed here are
//! treated as sanitizers by the taint analysis.

use crate::error::{CqaError, Result};

/// The registered validator names, mirrored by `cqa-lint`'s
/// `wire-input-taint` rule. A function listed here is a sanitizer: its
/// return value is trusted. Keep sorted.
pub const VALIDATORS: &[&str] = &["bounded_str", "capped_u64", "unit_open"];

/// Validates that `x` lies in the open unit interval (0, 1) — the domain
/// of the accuracy `eps` and confidence `delta` parameters. NaN fails
/// both comparisons and is rejected.
pub fn unit_open(field: &str, x: f64) -> Result<f64> {
    if x > 0.0 && x < 1.0 {
        Ok(x)
    } else {
        Err(CqaError::Parse(format!("'{field}' must lie in (0, 1); got {x}")))
    }
}

/// Validates that `s` is non-empty and at most `max_bytes` long.
pub fn bounded_str<'a>(field: &str, s: &'a str, max_bytes: usize) -> Result<&'a str> {
    if s.is_empty() || s.len() > max_bytes {
        Err(CqaError::Parse(format!("'{field}' must be 1..={max_bytes} bytes, got {}", s.len())))
    } else {
        Ok(s)
    }
}

/// Clamps a wire-supplied count to `cap`. Unlike the refusing validators
/// this always succeeds: it is for fields where a large value is a
/// legitimate request that the server simply bounds (timeouts, batch
/// sizes), not a protocol violation.
pub fn capped_u64(x: u64, cap: u64) -> u64 {
    x.min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_open_accepts_interior_rejects_boundary() {
        assert_eq!(unit_open("eps", 0.5).unwrap(), 0.5);
        assert!(unit_open("eps", 0.0).is_err());
        assert!(unit_open("eps", 1.0).is_err());
        assert!(unit_open("eps", -0.1).is_err());
        assert!(unit_open("eps", f64::NAN).is_err());
    }

    #[test]
    fn bounded_str_enforces_both_ends() {
        assert_eq!(bounded_str("id", "abc", 8).unwrap(), "abc");
        assert!(bounded_str("id", "", 8).is_err());
        assert!(bounded_str("id", "123456789", 8).is_err());
    }

    #[test]
    fn capped_u64_clamps() {
        assert_eq!(capped_u64(5, 10), 5);
        assert_eq!(capped_u64(50, 10), 10);
    }

    #[test]
    fn registry_matches_exports_and_is_sorted() {
        assert!(VALIDATORS.windows(2).all(|w| w[0] < w[1]));
        // Compile-time presence check: referencing each registered fn.
        let _: fn(&str, f64) -> Result<f64> = unit_open;
        let _: for<'a> fn(&str, &'a str, usize) -> Result<&'a str> = bounded_str;
        let _: fn(u64, u64) -> u64 = capped_u64;
    }
}
