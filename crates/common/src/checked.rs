//! Checked numeric conversions for estimator math.
//!
//! The DKLR planners and the coverage algorithm turn real-valued iteration
//! budgets (`Υ`, `N`, `ρ̂`…) into loop counts. A bare `as u64` hides two
//! failure modes: `NaN` silently becomes `0` (a planner that runs *zero*
//! iterations and reports a confident estimate), and overflow silently
//! saturates without anyone deciding that was acceptable. These helpers
//! make the policy explicit, and `cqa-lint`'s `checked-estimator-math`
//! rule points offenders here.

/// Converts an iteration budget to `u64` with an explicit failure policy:
/// negative values clamp to `0`, values beyond `u64::MAX` clamp to
/// `u64::MAX`, and `NaN` maps to `u64::MAX` — *not* `0` as `as u64` would —
/// so a poisoned budget trips the downstream `max_samples` guard instead
/// of silently planning a zero-iteration run.
#[must_use]
pub fn f64_to_u64(x: f64) -> u64 {
    if x.is_nan() {
        return u64::MAX;
    }
    // `as` saturates on both ends for finite values and ±∞ (Rust 1.45+),
    // which is exactly the clamp we want once NaN is handled.
    x as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_values_truncate() {
        assert_eq!(f64_to_u64(0.0), 0);
        assert_eq!(f64_to_u64(7.9), 7);
        assert_eq!(f64_to_u64(4096.0), 4096);
    }

    #[test]
    fn negatives_clamp_to_zero() {
        assert_eq!(f64_to_u64(-1.0), 0);
        assert_eq!(f64_to_u64(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn overflow_clamps_to_max() {
        assert_eq!(f64_to_u64(1e300), u64::MAX);
        assert_eq!(f64_to_u64(f64::INFINITY), u64::MAX);
    }

    #[test]
    fn nan_fails_closed() {
        assert_eq!(f64_to_u64(f64::NAN), u64::MAX);
    }
}
