#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Shared infrastructure for the `cqa` workspace.
//!
//! This crate hosts the building blocks that every other crate relies on:
//!
//! * [`mt`] — a from-scratch MT19937-64 Mersenne Twister. The paper's
//!   implementation uses the Mersenne Twister of Matsumoto & Nishimura for
//!   all random choices (§5), so the approximation schemes here draw from
//!   the same generator family.
//! * [`alias`] — Walker's alias method for O(1) weighted sampling, used to
//!   pick an image index `i` with probability `|I^i| / |S•|` when sampling
//!   from the symbolic space.
//! * [`logspace`] — log-space non-negative numbers for quantities such as
//!   `|db(B)|` that overflow `f64`.
//! * [`stats`] — running mean/variance and percentile helpers for the
//!   benchmark harness.
//! * [`timer`] — stopwatches and soft deadlines (the paper flags runs as
//!   timed out after a budget; we do the same).
//! * [`checked`] — explicit float→integer conversions for estimator math,
//!   required by `cqa-lint`'s `checked-estimator-math` rule.
//! * [`error`] — the shared error type.

pub mod alias;
pub mod checked;
pub mod error;
pub mod hash;
pub mod json;
pub mod logspace;
pub mod mt;
pub mod stats;
pub mod timer;
pub mod validate;

pub use alias::AliasTable;
pub use error::{CqaError, Result};
pub use hash::{fnv1a64, fnv1a64_parts};
pub use json::Json;
pub use logspace::LogNum;
pub use mt::Mt64;
pub use stats::{percentile, RunningStats};
pub use timer::{Deadline, Stopwatch};
