//! The shared error type of the `cqa` workspace.

use std::fmt;

/// Errors surfaced by the CQA engine and benchmark infrastructure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqaError {
    /// A relation/column/query referenced a name the schema does not define.
    UnknownName(String),
    /// A fact or tuple had the wrong arity for its relation.
    ArityMismatch {
        /// The relation whose arity was violated.
        relation: String,
        /// The declared arity.
        expected: usize,
        /// The arity supplied.
        got: usize,
    },
    /// A value had the wrong type for its column.
    TypeMismatch {
        /// The relation containing the offending column.
        relation: String,
        /// The column whose type was violated.
        column: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A query string failed to parse.
    Parse(String),
    /// A structural invariant of an admissible pair was violated.
    InvalidSynopsis(String),
    /// An approximation run exceeded its time or sample budget.
    TimedOut {
        /// Which phase exhausted its budget.
        phase: &'static str,
    },
    /// An exact computation was asked for an instance that is too large.
    TooLarge(String),
    /// Invalid user-supplied parameter (ε, δ, noise level, …).
    InvalidParameter(String),
}

impl fmt::Display for CqaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqaError::UnknownName(n) => write!(f, "unknown name: {n}"),
            CqaError::ArityMismatch { relation, expected, got } => {
                write!(f, "arity mismatch for {relation}: expected {expected}, got {got}")
            }
            CqaError::TypeMismatch { relation, column, detail } => {
                write!(f, "type mismatch at {relation}.{column}: {detail}")
            }
            CqaError::Parse(msg) => write!(f, "parse error: {msg}"),
            CqaError::InvalidSynopsis(msg) => write!(f, "invalid synopsis: {msg}"),
            CqaError::TimedOut { phase } => write!(f, "timed out during {phase}"),
            CqaError::TooLarge(msg) => write!(f, "instance too large for exact computation: {msg}"),
            CqaError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for CqaError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, CqaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CqaError::ArityMismatch { relation: "emp".into(), expected: 3, got: 2 };
        assert!(e.to_string().contains("emp"));
        assert!(e.to_string().contains('3'));
        let t = CqaError::TimedOut { phase: "monte-carlo" };
        assert!(t.to_string().contains("monte-carlo"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CqaError::Parse("x".into()), CqaError::Parse("x".into()));
        assert_ne!(CqaError::Parse("x".into()), CqaError::Parse("y".into()));
    }
}
