//! FNV-1a 64-bit hashing for fingerprints and shard selection.
//!
//! FNV-1a is not collision-resistant; it is used here only to fingerprint
//! database dumps and constraint sets for cache keys, where an adversarial
//! collision is not part of the threat model and a stable, dependency-free
//! hash that can be reproduced by any client matters more.

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a folded over several slices, as if they were concatenated with a
/// `0xFF` separator (so `["ab", "c"]` and `["a", "bc"]` hash differently —
/// `0xFF` never occurs inside UTF-8 text).
pub fn fnv1a64_parts<'a>(parts: impl IntoIterator<Item = &'a [u8]>) -> u64 {
    let mut h = FNV_OFFSET;
    for part in parts {
        for &b in part {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= 0xFF;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn parts_are_separator_sensitive() {
        assert_ne!(
            fnv1a64_parts([b"ab".as_slice(), b"c".as_slice()]),
            fnv1a64_parts([b"a".as_slice(), b"bc".as_slice()]),
        );
        assert_ne!(fnv1a64_parts([b"ab".as_slice()]), fnv1a64(b"ab"));
    }
}
