//! Small statistics helpers used by the estimators and the benchmark
//! harness: Welford running moments and percentiles.

/// Running mean and variance via Welford's online algorithm.
///
/// Used by the harness to aggregate per-query running times, and by tests
/// to check sampler moments against closed forms.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The `q`-th percentile (0 ≤ q ≤ 100) by linear interpolation over a
/// *sorted* slice. Used for the preprocessing-time CDF of Figure 3.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q), "percentile {q} out of range");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic data set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }
}
