//! MT19937-64: the 64-bit Mersenne Twister of Matsumoto & Nishimura.
//!
//! The paper's implementation uses the Mersenne Twister for every random
//! choice made by the approximation schemes (§5, citing Matsumoto &
//! Nishimura 1998). We implement the 64-bit reference algorithm directly so
//! the samplers in `cqa-core` draw from the same generator family, and we
//! validate the implementation against the published reference output
//! (`mt19937-64.out.txt`) in the tests below.

/// State size of MT19937-64.
const NN: usize = 312;
const MM: usize = 156;
const MATRIX_A: u64 = 0xB502_6F5A_A966_19E9;
/// Most significant 33 bits.
const UM: u64 = 0xFFFF_FFFF_8000_0000;
/// Least significant 31 bits.
const LM: u64 = 0x7FFF_FFFF;

/// A 64-bit Mersenne Twister pseudo-random number generator.
///
/// Deterministic, seedable, and cheap to fork (via [`Mt64::fork`]) so every
/// benchmark worker can own an independent stream derived from one master
/// seed.
#[derive(Clone)]
pub struct Mt64 {
    mt: Box<[u64; NN]>,
    mti: usize,
}

impl std::fmt::Debug for Mt64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mt64").field("mti", &self.mti).finish_non_exhaustive()
    }
}

impl Mt64 {
    /// Creates a generator from a single 64-bit seed (`init_genrand64`).
    pub fn new(seed: u64) -> Self {
        let mut mt = Box::new([0u64; NN]);
        mt[0] = seed;
        for i in 1..NN {
            mt[i] = 6_364_136_223_846_793_005u64
                .wrapping_mul(mt[i - 1] ^ (mt[i - 1] >> 62))
                .wrapping_add(i as u64);
        }
        Mt64 { mt, mti: NN }
    }

    /// Creates a generator from an array seed (`init_by_array64`).
    pub fn from_key(key: &[u64]) -> Self {
        let mut rng = Self::new(19_650_218);
        let mut i: usize = 1;
        let mut j: usize = 0;
        let mut k = NN.max(key.len());
        while k > 0 {
            rng.mt[i] = (rng.mt[i]
                ^ (rng.mt[i - 1] ^ (rng.mt[i - 1] >> 62)).wrapping_mul(3_935_559_000_370_003_845))
            .wrapping_add(key[j])
            .wrapping_add(j as u64);
            i += 1;
            j += 1;
            if i >= NN {
                rng.mt[0] = rng.mt[NN - 1];
                i = 1;
            }
            if j >= key.len() {
                j = 0;
            }
            k -= 1;
        }
        k = NN - 1;
        while k > 0 {
            rng.mt[i] = (rng.mt[i]
                ^ (rng.mt[i - 1] ^ (rng.mt[i - 1] >> 62)).wrapping_mul(2_862_933_555_777_941_757))
            .wrapping_sub(i as u64);
            i += 1;
            if i >= NN {
                rng.mt[0] = rng.mt[NN - 1];
                i = 1;
            }
            k -= 1;
        }
        rng.mt[0] = 1 << 63;
        rng
    }

    /// Derives an independent child generator; used to hand each benchmark
    /// worker or scenario its own stream from one master seed.
    pub fn fork(&mut self) -> Self {
        Self::from_key(&[self.next_u64(), self.next_u64(), self.next_u64(), 0x9E37_79B9])
    }

    fn refill(&mut self) {
        let mag01 = [0u64, MATRIX_A];
        let mt = &mut self.mt;
        for i in 0..(NN - MM) {
            let x = (mt[i] & UM) | (mt[i + 1] & LM);
            mt[i] = mt[i + MM] ^ (x >> 1) ^ mag01[(x & 1) as usize];
        }
        for i in (NN - MM)..(NN - 1) {
            let x = (mt[i] & UM) | (mt[i + 1] & LM);
            mt[i] = mt[i + MM - NN] ^ (x >> 1) ^ mag01[(x & 1) as usize];
        }
        let x = (mt[NN - 1] & UM) | (mt[0] & LM);
        mt[NN - 1] = mt[MM - 1] ^ (x >> 1) ^ mag01[(x & 1) as usize];
        self.mti = 0;
    }

    /// The next raw 64-bit output (`genrand64_int64`).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        if self.mti >= NN {
            self.refill();
        }
        let mut x = self.mt[self.mti];
        self.mti += 1;
        x ^= (x >> 29) & 0x5555_5555_5555_5555;
        x ^= (x << 17) & 0x71D6_7FFF_EDA6_0000;
        x ^= (x << 37) & 0xFFF7_EEE0_0000_0000;
        x ^= x >> 43;
        x
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision
    /// (`genrand64_real2`).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// A uniform integer in `0..n`. `n` must be non-zero.
    ///
    /// Uses rejection sampling over the top bits so the result is exactly
    /// uniform (no modulo bias).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        if n == 1 {
            return 0;
        }
        // Power of two: mask directly.
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Rejection zone: largest multiple of n that fits in u64.
        let zone = u64::MAX - (u64::MAX % n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// A uniform `usize` index in `0..n`. `n` must be non-zero.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// A Bernoulli draw with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (k ≤ n), in random order.
    ///
    /// Uses Floyd's algorithm: O(k) expected work regardless of `n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut chosen: std::collections::HashSet<usize> =
            std::collections::HashSet::with_capacity(k * 2);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.index(j + 1);
            let pick = if chosen.contains(&t) { j } else { t };
            chosen.insert(pick);
            out.push(pick);
        }
        self.shuffle(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First values of the published reference output of mt19937-64.c when
    /// seeded with `init_by_array64({0x12345, 0x23456, 0x34567, 0x45678})`.
    #[test]
    fn matches_reference_vectors() {
        let mut rng = Mt64::from_key(&[0x12345, 0x23456, 0x34567, 0x45678]);
        let expected: [u64; 10] = [
            7266447313870364031,
            4946485549665804864,
            16945909448695747420,
            16394063075524226720,
            4873882236456199058,
            14877448043947020171,
            6740343660852211943,
            13857871200353263164,
            5249110015610582907,
            10205081126064480383,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "mismatch at output {i}");
        }
    }

    #[test]
    fn single_seed_is_deterministic() {
        let mut a = Mt64::new(5489);
        let mut b = Mt64::new(5489);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Mt64::new(1);
        let mut b = Mt64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Mt64::new(42);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Mt64::new(7);
        let n = 10u64;
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.below(n);
            assert!(v < n);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow generous slack.
            assert!((9_000..11_000).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn below_one_is_zero() {
        let mut rng = Mt64::new(3);
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = Mt64::new(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match rng.range_inclusive(2, 5) {
                2 => lo_seen = true,
                5 => hi_seen = true,
                v => assert!((2..=5).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn sample_indices_distinct_and_complete() {
        let mut rng = Mt64::new(9);
        for k in 0..=20 {
            let s = rng.sample_indices(20, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k);
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Mt64::new(123);
        let mut b = a.fork();
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Mt64::new(77);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
