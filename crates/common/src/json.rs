//! A small, dependency-free JSON value type with a parser and writer.
//!
//! The server protocol is line-delimited JSON and the build environment
//! has no crates-io mirror (so no `serde_json`); this module provides the
//! few hundred lines of JSON the workspace needs. It implements RFC 8259
//! minus a few corners noted inline: parsed numbers are `f64` (integers
//! round-trip exactly up to 2⁵³) and `\uXXXX` escapes outside the basic
//! multilingual plane must be valid surrogate pairs.

use crate::error::{CqaError, Result};
use std::collections::BTreeMap;
use std::fmt;
use std::io;

/// A JSON value. Objects use a `BTreeMap`, so serialization is
/// deterministic — important for cache keys and test assertions.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always an `f64`, as in JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value of a key, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as an integer (a number with no fractional part).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// A required string field of an object, with a protocol-shaped error.
    pub fn req_str(&self, key: &str) -> Result<&str> {
        self.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| CqaError::Parse(format!("missing or non-string field '{key}'")))
    }

    /// A required numeric field of an object.
    pub fn req_f64(&self, key: &str) -> Result<f64> {
        self.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| CqaError::Parse(format!("missing or non-numeric field '{key}'")))
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn write_escaped<W: io::Write>(out: &mut W, s: &str) -> io::Result<()> {
    out.write_all(b"\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_all(b"\\\"")?,
            '\\' => out.write_all(b"\\\\")?,
            '\n' => out.write_all(b"\\n")?,
            '\r' => out.write_all(b"\\r")?,
            '\t' => out.write_all(b"\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_all(b"\"")
}

fn write_value<W: io::Write>(out: &mut W, v: &Json) -> io::Result<()> {
    match v {
        Json::Null => out.write_all(b"null"),
        Json::Bool(true) => out.write_all(b"true"),
        Json::Bool(false) => out.write_all(b"false"),
        Json::Num(n) => {
            if n.is_finite() {
                // Integers print without a trailing ".0" (16 digits of
                // integer precision is beyond the 2^53 exactness bound).
                if n.fract() == 0.0 && n.abs() < 1e16 {
                    write!(out, "{}", *n as i64)
                } else {
                    write!(out, "{n}")
                }
            } else {
                // JSON has no Infinity/NaN; emit null like JavaScript does.
                out.write_all(b"null")
            }
        }
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            out.write_all(b"[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_all(b",")?;
                }
                write_value(out, item)?;
            }
            out.write_all(b"]")
        }
        Json::Obj(map) => {
            out.write_all(b"{")?;
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.write_all(b",")?;
                }
                write_escaped(out, k)?;
                out.write_all(b":")?;
                write_value(out, val)?;
            }
            out.write_all(b"}")
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl Json {
    /// Serializes to a single line of JSON (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = Vec::new();
        // cqa-lint: allow(no-panic-in-request-path): io::Write into a Vec<u8> is infallible
        write_value(&mut out, self).expect("writing JSON to a Vec cannot fail");
        // cqa-lint: allow(no-panic-in-request-path): the serializer only emits valid UTF-8 (escapes are ASCII, strings re-encode chars)
        String::from_utf8(out).expect("serialized JSON is UTF-8")
    }

    /// Streams compact JSON into `w` without materializing the text —
    /// large documents (trace exports run to megabytes) go straight to
    /// the file. Callers should hand in a buffered writer.
    pub fn write_compact<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_value(w, self)
    }

    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> CqaError {
        CqaError::Parse(format!("json: {msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        // cqa-lint: allow(no-panic-in-request-path): the matched range holds only ASCII sign/digit/exponent bytes
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let n: f64 = text.parse().map_err(|_| self.err(&format!("bad number '{text}'")))?;
        Ok(Json::Num(n))
    }

    fn hex4(&mut self) -> Result<u16> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8: it
                    // arrived as &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    // cqa-lint: allow(no-panic-in-request-path): peek() returned Some, so `rest` has at least one byte
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.25", "\"hi\"", "[]", "{}"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string_compact(), text, "roundtrip of {text}");
        }
    }

    #[test]
    fn roundtrips_nested_structures() {
        let text = r#"{"a":[1,2,{"b":"x"}],"c":null,"d":true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string_compact(), text);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn write_compact_streams_the_same_bytes() {
        let text = r#"{"a":[1,2,{"b":"x \" \\ \n"}],"c":null,"d":3.5}"#;
        let v = Json::parse(text).unwrap();
        let mut buf = Vec::new();
        v.write_compact(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), v.to_string_compact());
    }

    #[test]
    fn object_keys_serialize_sorted() {
        let v = Json::obj([("zebra", Json::from(1u64)), ("alpha", Json::from(2u64))]);
        assert_eq!(v.to_string_compact(), r#"{"alpha":2,"zebra":1}"#);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let ugly = "tab\there \"quoted\" back\\slash\nnewline \u{1}ctrl é λ 🦀";
        let mut out = Vec::new();
        write_escaped(&mut out, ugly).unwrap();
        let parsed = Json::parse(std::str::from_utf8(&out).unwrap()).unwrap();
        assert_eq!(parsed.as_str().unwrap(), ugly);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""A""#).unwrap().as_str().unwrap(), "A");
        // A surrogate pair (crab emoji).
        assert_eq!(Json::parse(r#""🦀""#).unwrap().as_str().unwrap(), "🦀");
        assert!(Json::parse(r#""\ud83e""#).is_err());
    }

    #[test]
    fn numbers_parse_and_print() {
        assert_eq!(Json::parse("1e3").unwrap().as_f64().unwrap(), 1000.0);
        assert_eq!(Json::parse("1e3").unwrap().to_string_compact(), "1000");
        assert_eq!(Json::parse("0.5").unwrap().to_string_compact(), "0.5");
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\"}",
            "{\"a\":}",
            "[1] trailing",
            "nul",
            "{1:2}",
            "\u{1}",
        ] {
            assert!(Json::parse(text).is_err(), "accepted malformed {text:?}");
        }
    }

    #[test]
    fn accessors_and_helpers() {
        let v = Json::obj([("s", Json::str("x")), ("n", Json::from(2.5)), ("b", Json::from(true))]);
        assert_eq!(v.req_str("s").unwrap(), "x");
        assert_eq!(v.req_f64("n").unwrap(), 2.5);
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.req_str("missing").is_err());
        assert!(v.req_f64("s").is_err());
        assert!(v.get("s").unwrap().as_bool().is_none());
    }

    #[test]
    fn nonfinite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }
}
