//! Wall-clock measurement and soft deadlines.
//!
//! The paper flags an approximation scheme as timed out when it exceeds a
//! budget (1 hour there). Our samplers check a [`Deadline`] periodically so
//! the benchmark harness can enforce the same semantics at our scale.

use std::time::{Duration, Instant};

/// A simple stopwatch for the harness' timing columns.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Elapsed wall time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Resets the stopwatch to now.
    pub fn restart(&mut self) {
        self.start = Instant::now();
    }
}

/// A soft deadline; `None` budget means "never expires".
///
/// Checking the system clock on every sample would dominate the samplers'
/// cost, so callers poll [`Deadline::expired`] every few thousand samples.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    limit: Option<Instant>,
}

impl Deadline {
    /// A deadline that never fires.
    pub fn none() -> Self {
        Deadline { limit: None }
    }

    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline { limit: Some(Instant::now() + budget) }
    }

    /// A deadline `secs` seconds from now.
    pub fn after_secs(secs: f64) -> Self {
        Self::after(Duration::from_secs_f64(secs))
    }

    /// True once the budget is exhausted.
    #[inline]
    pub fn expired(&self) -> bool {
        match self.limit {
            None => false,
            Some(t) => Instant::now() >= t,
        }
    }

    /// True when this deadline can ever expire.
    pub fn is_finite(&self) -> bool {
        self.limit.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(sw.elapsed_secs() >= 0.004);
    }

    #[test]
    fn none_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert!(!d.is_finite());
    }

    #[test]
    fn deadline_expires_after_budget() {
        let d = Deadline::after(Duration::from_millis(3));
        assert!(d.is_finite());
        std::thread::sleep(Duration::from_millis(6));
        assert!(d.expired());
    }

    #[test]
    fn fresh_deadline_is_not_expired() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
    }
}
