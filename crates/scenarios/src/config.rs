//! Benchmark configuration profiles.
//!
//! The paper's grids (10 noise levels × 11 balance levels × 5 join levels
//! × 5 queries each, 1 GB databases, 1-hour timeouts) consumed 48 days of
//! CPU. The profiles here keep the *structure* — the same three scenario
//! families over the same axes — at container scale. Every knob can be
//! overridden through `CQA_*` environment variables, so `full`-profile
//! runs remain a single command.

use std::env;

/// All knobs of a benchmark run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// TPC-H-like scale factor for the base database `D_H`.
    pub scale: f64,
    /// Master seed; everything (data, noise, queries, samplers) derives
    /// from it.
    pub seed: u64,
    /// Noise levels `p` (fractions of query-relevant facts perturbed).
    pub noise_levels: Vec<f64>,
    /// Balance targets `q`; 0 denotes the Boolean query `Q_p[0]`.
    pub balance_levels: Vec<f64>,
    /// Join counts of the SQG queries.
    pub joins: Vec<usize>,
    /// SQG queries generated per join level (the paper uses 5).
    pub queries_per_join: usize,
    /// Constant occurrences per SQG query (the paper fixes 2).
    pub constants: usize,
    /// DQG candidate budget per (query, noise) combination.
    pub dqg_iterations: usize,
    /// Relative error ε (the paper fixes 0.1).
    pub eps: f64,
    /// Uncertainty δ (the paper fixes 0.25).
    pub delta: f64,
    /// Per-(pair, scheme) timeout in seconds (the paper uses 1 hour per
    /// scenario).
    pub timeout_secs: f64,
    /// Worker threads for scenario execution.
    pub threads: usize,
    /// Noise block-size bounds `[ℓ, u]` (the paper fixes [2, 5]).
    pub block_min: u32,
    /// See [`Self::block_min`].
    pub block_max: u32,
    /// Minimum homomorphic size a pool query must have on `D_H`. Queries
    /// with almost no homomorphic images make every scheme trivially fast
    /// and, for Boolean scenarios, lose the `R(H,B) ≈ 1` property the
    /// paper's analysis hinges on (§7.1: "the only synopsis therein
    /// collects all the homomorphic images of the query").
    pub min_hom_size: usize,
}

impl BenchConfig {
    /// A CI-sized profile: minutes, not days. Same axes as the paper with
    /// coarser grids.
    pub fn quick() -> Self {
        BenchConfig {
            scale: 0.001,
            seed: 20210620, // the PODS'21 presentation date
            noise_levels: vec![0.2, 0.4, 0.6, 0.8, 1.0],
            balance_levels: vec![0.0, 0.3, 0.5, 0.7, 1.0],
            joins: vec![1, 2, 3, 4, 5],
            queries_per_join: 2,
            constants: 2,
            dqg_iterations: 200,
            eps: 0.1,
            delta: 0.25,
            timeout_secs: 3.0,
            threads: default_threads(),
            block_min: 2,
            block_max: 5,
            min_hom_size: 8,
        }
    }

    /// The paper-shaped profile: full 10×11×5 grids, 5 queries per join
    /// level, larger data. Still hours rather than days at our scale.
    pub fn full() -> Self {
        BenchConfig {
            scale: 0.005,
            noise_levels: (1..=10).map(|i| i as f64 / 10.0).collect(),
            balance_levels: (0..=10).map(|i| i as f64 / 10.0).collect(),
            queries_per_join: 5,
            dqg_iterations: 2000,
            timeout_secs: 30.0,
            min_hom_size: 16,
            ..Self::quick()
        }
    }

    /// An even smaller profile for unit tests of the harness itself.
    pub fn smoke() -> Self {
        BenchConfig {
            scale: 0.0003,
            noise_levels: vec![0.3, 0.8],
            balance_levels: vec![0.0, 0.5],
            joins: vec![1, 2],
            queries_per_join: 1,
            dqg_iterations: 30,
            timeout_secs: 2.0,
            threads: 2,
            min_hom_size: 2,
            ..Self::quick()
        }
    }

    /// Loads the profile named by `CQA_PROFILE` (`quick` default, `full`,
    /// `smoke`), then applies individual `CQA_*` overrides:
    /// `CQA_SCALE`, `CQA_SEED`, `CQA_TIMEOUT`, `CQA_THREADS`,
    /// `CQA_QUERIES_PER_JOIN`, `CQA_EPS`, `CQA_DELTA`.
    pub fn from_env() -> Self {
        let mut cfg = match env::var("CQA_PROFILE").as_deref() {
            Ok("full") => Self::full(),
            Ok("smoke") => Self::smoke(),
            _ => Self::quick(),
        };
        fn parse<T: std::str::FromStr>(key: &str) -> Option<T> {
            env::var(key).ok()?.parse().ok()
        }
        if let Some(v) = parse("CQA_SCALE") {
            cfg.scale = v;
        }
        if let Some(v) = parse("CQA_SEED") {
            cfg.seed = v;
        }
        if let Some(v) = parse("CQA_TIMEOUT") {
            cfg.timeout_secs = v;
        }
        if let Some(v) = parse("CQA_THREADS") {
            cfg.threads = v;
        }
        if let Some(v) = parse("CQA_QUERIES_PER_JOIN") {
            cfg.queries_per_join = v;
        }
        if let Some(v) = parse("CQA_EPS") {
            cfg.eps = v;
        }
        if let Some(v) = parse("CQA_DELTA") {
            cfg.delta = v;
        }
        cfg
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_well_formed() {
        for cfg in [BenchConfig::quick(), BenchConfig::full(), BenchConfig::smoke()] {
            assert!(cfg.scale > 0.0);
            assert!(!cfg.noise_levels.is_empty());
            assert!(cfg.noise_levels.iter().all(|&p| (0.0..=1.0).contains(&p)));
            assert!(cfg.balance_levels.iter().all(|&q| (0.0..=1.0).contains(&q)));
            assert!(cfg.eps > 0.0 && cfg.delta > 0.0 && cfg.delta < 1.0);
            assert!(cfg.block_min >= 2 && cfg.block_max >= cfg.block_min);
            assert!(cfg.threads >= 1);
        }
    }

    #[test]
    fn full_profile_has_paper_grids() {
        let cfg = BenchConfig::full();
        assert_eq!(cfg.noise_levels.len(), 10);
        assert_eq!(cfg.balance_levels.len(), 11);
        assert_eq!(cfg.joins, vec![1, 2, 3, 4, 5]);
        assert_eq!(cfg.queries_per_join, 5);
        assert_eq!(cfg.eps, 0.1);
        assert_eq!(cfg.delta, 0.25);
    }
}
