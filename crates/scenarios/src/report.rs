//! Figure data structures and rendering.
//!
//! Every experiment produces a [`Figure`]: named series of `(x, y)` points
//! with timeout annotations, exactly the shape of the paper's plots. A
//! figure renders as an ASCII table for the terminal and as CSV for
//! external plotting.

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One measured point of a series.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// The x coordinate (noise %, balance %, join count, …).
    pub x: f64,
    /// The y value (seconds, share %, fraction of pairs, …).
    pub y: f64,
    /// Runs that hit the timeout at this point (the integer annotations of
    /// the paper's plots).
    pub timeouts: usize,
    /// Total runs aggregated into this point.
    pub total: usize,
}

/// One plotted line (a scheme, usually).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in x order.
    pub points: Vec<Point>,
}

/// A full figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Stable identifier, e.g. `noise_q00_j3`.
    pub id: String,
    /// Human title, e.g. `Noise[0, 3]`.
    pub title: String,
    /// X axis label.
    pub xlabel: String,
    /// Y axis label.
    pub ylabel: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// CSV with one row per x value and one column pair per series.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {}\n", self.id, self.title));
        out.push_str(&self.xlabel.replace(' ', "_").to_lowercase());
        for s in &self.series {
            out.push_str(&format!(",{0},{0}_timeouts", s.label));
        }
        out.push('\n');
        let xs: Vec<f64> =
            self.series.first().map(|s| s.points.iter().map(|p| p.x).collect()).unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) => out.push_str(&format!(",{:.6},{}", p.y, p.timeouts)),
                    None => out.push_str(",,"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV under `dir` as `<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

impl Figure {
    /// A rough ASCII plot of the series (one letter per series, rows from
    /// the max down to 0), mirroring the look of the paper's figures well
    /// enough to eyeball trends in a terminal.
    pub fn plot(&self) -> String {
        const HEIGHT: usize = 12;
        let letters: Vec<char> =
            self.series.iter().map(|s| s.label.chars().next().unwrap_or('?')).collect();
        let n = self.series.iter().map(|s| s.points.len()).max().unwrap_or(0);
        if n == 0 {
            return String::new();
        }
        let max_y = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.y))
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let mut grid = vec![vec![' '; n * 4]; HEIGHT];
        for (si, s) in self.series.iter().enumerate() {
            for (i, p) in s.points.iter().enumerate() {
                let row = ((1.0 - p.y / max_y) * (HEIGHT - 1) as f64).round() as usize;
                let col = i * 4 + si.min(3);
                if grid[row][col] == ' ' {
                    grid[row][col] = letters[si];
                } else {
                    grid[row][col] = '*'; // overlap
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{} — {} (max y = {:.3} {})\n",
            self.id, self.title, max_y, self.ylabel
        ));
        for row in grid {
            out.push_str("  |");
            out.extend(row);
            out.push('\n');
        }
        out.push_str("  +");
        out.push_str(&"-".repeat(n * 4));
        out.push('\n');
        let legend: Vec<String> =
            self.series.iter().zip(&letters).map(|(s, c)| format!("{c}={}", s.label)).collect();
        out.push_str(&format!("   x: {} | {}\n", self.xlabel, legend.join("  ")));
        out
    }
}

impl fmt::Display for Figure {
    /// ASCII table: one row per x value, one column per series; timeouts
    /// are annotated as `(k!)` after the value, matching the integer
    /// annotations on the paper's plots.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "── {} ─ {} ──", self.id, self.title)?;
        write!(f, "{:>12}", self.xlabel)?;
        for s in &self.series {
            write!(f, "{:>16}", s.label)?;
        }
        writeln!(f)?;
        let n = self.series.iter().map(|s| s.points.len()).max().unwrap_or(0);
        for i in 0..n {
            let x = self.series.iter().find_map(|s| s.points.get(i)).map(|p| p.x).unwrap_or(0.0);
            write!(f, "{x:>12.1}")?;
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) if p.timeouts > 0 => write!(f, "{:>11.3} ({}!)", p.y, p.timeouts)?,
                    Some(p) => write!(f, "{:>16.3}", p.y)?,
                    None => write!(f, "{:>16}", "-")?,
                }
            }
            writeln!(f)?;
        }
        writeln!(f, "   (y: {}; `(k!)` marks k timed-out runs)", self.ylabel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        Figure {
            id: "noise_q00_j1".into(),
            title: "Noise[0, 1]".into(),
            xlabel: "Noise (%)".into(),
            ylabel: "Execution time (s)".into(),
            series: vec![
                Series {
                    label: "Natural".into(),
                    points: vec![
                        Point { x: 20.0, y: 0.5, timeouts: 0, total: 5 },
                        Point { x: 40.0, y: 0.6, timeouts: 0, total: 5 },
                    ],
                },
                Series {
                    label: "KL".into(),
                    points: vec![
                        Point { x: 20.0, y: 1.5, timeouts: 0, total: 5 },
                        Point { x: 40.0, y: 3.0, timeouts: 2, total: 5 },
                    ],
                },
            ],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_figure().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("# noise_q00_j1"));
        assert_eq!(lines[1], "noise_(%),Natural,Natural_timeouts,KL,KL_timeouts");
        assert!(lines[2].starts_with("20,0.5"));
        assert!(lines[3].contains(",2")); // the KL timeout count
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn display_renders_all_series() {
        let text = sample_figure().to_string();
        assert!(text.contains("Natural"));
        assert!(text.contains("KL"));
        assert!(text.contains("(2!)"));
        assert!(text.contains("Noise[0, 1]"));
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("cqa_report_test");
        let path = sample_figure().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("Natural"));
        std::fs::remove_file(path).ok();
    }
}

#[cfg(test)]
mod plot_tests {
    use super::*;

    #[test]
    fn plot_renders_all_series_letters() {
        let fig = Figure {
            id: "t".into(),
            title: "test".into(),
            xlabel: "x".into(),
            ylabel: "s".into(),
            series: vec![
                Series {
                    label: "Natural".into(),
                    points: vec![
                        Point { x: 1.0, y: 1.0, timeouts: 0, total: 1 },
                        Point { x: 2.0, y: 2.0, timeouts: 0, total: 1 },
                    ],
                },
                Series {
                    label: "KL".into(),
                    points: vec![
                        Point { x: 1.0, y: 0.5, timeouts: 0, total: 1 },
                        Point { x: 2.0, y: 4.0, timeouts: 0, total: 1 },
                    ],
                },
            ],
        };
        let plot = fig.plot();
        assert!(plot.contains('N'));
        assert!(plot.contains('K'));
        assert!(plot.contains("N=Natural"));
        assert!(plot.contains("max y = 4.000"));
    }

    #[test]
    fn empty_figure_plots_to_nothing() {
        let fig = Figure {
            id: "e".into(),
            title: "empty".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![],
        };
        assert!(fig.plot().is_empty());
    }
}
