//! Building the database–query pair set `P_H` (§6.2).
//!
//! 1. Generate the consistent base database `D_H` (TPC-H-like).
//! 2. For each join level `j`, keep SQG-generated CQs with exactly `j`
//!    joins, the configured constant count, full projection, and a
//!    non-empty (and not explosively large) answer over `D_H`.
//! 3. For each query `Q` and noise level `p`, produce `D_Q[p]` with the
//!    query-aware noise generator (block sizes in `[ℓ, u]`).
//! 4. For each `(Q, p)` and balance target `q > 0`, produce `Q_p[q]` with
//!    DQG over `D_Q[p]`; target 0 is the Boolean query `Q_p[0]`.

use crate::config::BenchConfig;
use cqa_common::{CqaError, Mt64, Result};
use cqa_noise::{add_query_aware_noise, NoiseSpec};
use cqa_qgen::{dqg, sqg, SqgSpec};
use cqa_query::ConjunctiveQuery;
use cqa_storage::Database;
use cqa_synopsis::{build_synopses, BuildOptions};
use cqa_tpch::{generate, TpchConfig};

/// Guard against pathological SQG candidates: queries whose homomorphism
/// count on the *base* database exceeds this are re-drawn.
const MAX_BASE_HOMS: usize = 50_000;

/// One base query of the pool.
#[derive(Debug, Clone)]
pub struct PoolQuery {
    /// The join level `j`.
    pub join_level: usize,
    /// Index within the join level.
    pub index: usize,
    /// The fully-projected SQG query.
    pub base: ConjunctiveQuery,
}

/// A balanced variant `Q_p[q]`.
#[derive(Debug, Clone)]
pub struct BalancedQuery {
    /// The requested balance (0 = Boolean).
    pub target: f64,
    /// The balance achieved on `D_Q[p]` (0 reported for Boolean).
    pub achieved: f64,
    /// The query.
    pub query: ConjunctiveQuery,
}

/// The pair set `P_H`, fully materialized.
pub struct Pool {
    /// The configuration it was built with.
    pub config: BenchConfig,
    /// The consistent base database `D_H`.
    pub base_db: Database,
    /// Base queries, ordered by join level then index.
    pub queries: Vec<PoolQuery>,
    /// `noisy_dbs[q][pi]` = `D_Q[p]` for query `q` and noise level index
    /// `pi`.
    pub noisy_dbs: Vec<Vec<Database>>,
    /// `balanced[q][pi][bi]` = `Q_p[b]`.
    pub balanced: Vec<Vec<Vec<BalancedQuery>>>,
}

impl Pool {
    /// Builds the pool. Progress lines go to stderr because pool builds
    /// take the bulk of a benchmark run's setup time.
    pub fn build(config: BenchConfig) -> Result<Pool> {
        let mut rng = Mt64::new(config.seed);
        eprintln!("[pool] generating D_H at scale {} (seed {}) ...", config.scale, config.seed);
        let base_db = generate(TpchConfig { scale: config.scale, seed: rng.next_u64() });
        eprintln!("[pool] D_H has {} facts", base_db.fact_count());

        let mut queries = Vec::new();
        // Canonical fingerprints of every kept query, across join levels:
        // two α-equivalent SQG draws would measure the same thing twice.
        let mut kept_fingerprints = std::collections::HashSet::new();
        for &j in &config.joins {
            let mut kept = 0;
            let mut attempts = 0;
            while kept < config.queries_per_join {
                attempts += 1;
                if attempts > 200 * config.queries_per_join {
                    return Err(CqaError::InvalidParameter(format!(
                        "could not find {} usable queries with {j} joins",
                        config.queries_per_join
                    )));
                }
                let Ok(q) = sqg(
                    &base_db,
                    SqgSpec { joins: j, constants: config.constants, proj_fraction: 1.0 },
                    &mut rng,
                ) else {
                    continue;
                };
                if q.join_count() != j {
                    continue;
                }
                if !kept_fingerprints.insert(q.canonical_fingerprint()) {
                    continue;
                }
                // Keep queries that are non-empty and tractable on D_H.
                let Ok(syn) = build_synopses(
                    &base_db,
                    &q,
                    BuildOptions { deadline: None, max_homs: Some(MAX_BASE_HOMS) },
                ) else {
                    continue;
                };
                if syn.total_homs >= MAX_BASE_HOMS
                    || syn.output_size() == 0
                    || syn.hom_size < config.min_hom_size
                {
                    continue;
                }
                queries.push(PoolQuery { join_level: j, index: kept, base: q });
                kept += 1;
            }
            eprintln!("[pool] kept {} queries with {j} joins", config.queries_per_join);
        }

        let mut noisy_dbs = Vec::with_capacity(queries.len());
        let mut balanced = Vec::with_capacity(queries.len());
        for pq in &queries {
            let mut dbs_for_q = Vec::with_capacity(config.noise_levels.len());
            let mut bal_for_q = Vec::with_capacity(config.noise_levels.len());
            for &p in &config.noise_levels {
                let spec = NoiseSpec { p, lmin: config.block_min, umax: config.block_max };
                let (noisy, _) = add_query_aware_noise(&base_db, &pq.base, spec, &mut rng)?;
                // Balanced variants on this noisy database.
                let positive: Vec<f64> =
                    config.balance_levels.iter().copied().filter(|&b| b > 0.0).collect();
                let dqg_results = if positive.is_empty() {
                    Vec::new()
                } else {
                    dqg(&noisy, &pq.base, &positive, config.dqg_iterations, &mut rng)?
                };
                let mut variants = Vec::with_capacity(config.balance_levels.len());
                let mut dqg_iter = dqg_results.into_iter();
                for &b in &config.balance_levels {
                    if b == 0.0 {
                        variants.push(BalancedQuery {
                            target: 0.0,
                            achieved: 0.0,
                            query: pq.base.boolean(),
                        });
                    } else {
                        let r = dqg_iter.next().expect("one DQG result per positive target");
                        variants.push(BalancedQuery {
                            target: r.target,
                            achieved: r.achieved,
                            query: r.query,
                        });
                    }
                }
                dbs_for_q.push(noisy);
                bal_for_q.push(variants);
            }
            eprintln!(
                "[pool] query j={} #{}: {} noisy databases ready",
                pq.join_level,
                pq.index,
                config.noise_levels.len()
            );
            noisy_dbs.push(dbs_for_q);
            balanced.push(bal_for_q);
        }

        Ok(Pool { config, base_db, queries, noisy_dbs, balanced })
    }

    /// Indices of the pool queries at a join level.
    pub fn queries_at_join(&self, j: usize) -> Vec<usize> {
        self.queries.iter().enumerate().filter(|(_, q)| q.join_level == j).map(|(i, _)| i).collect()
    }

    /// The pair `(D_Q[p], Q_p[b])` by indices.
    pub fn pair(&self, q: usize, pi: usize, bi: usize) -> (&Database, &ConjunctiveQuery) {
        (&self.noisy_dbs[q][pi], &self.balanced[q][pi][bi].query)
    }

    /// Total number of database–query pairs (the paper's |P_H| = 2750).
    pub fn pair_count(&self) -> usize {
        self.queries.len() * self.config.noise_levels.len() * self.config.balance_levels.len()
    }

    /// A deterministic per-pair seed.
    pub fn pair_seed(&self, q: usize, pi: usize, bi: usize) -> u64 {
        self.config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((q as u64) << 24)
            .wrapping_add((pi as u64) << 12)
            .wrapping_add(bi as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_storage::is_consistent;

    fn smoke_pool() -> Pool {
        Pool::build(BenchConfig::smoke()).expect("smoke pool builds")
    }

    #[test]
    fn pool_structure_matches_config() {
        let pool = smoke_pool();
        let cfg = &pool.config;
        assert_eq!(pool.queries.len(), cfg.joins.len() * cfg.queries_per_join);
        assert_eq!(pool.noisy_dbs.len(), pool.queries.len());
        for (q, dbs) in pool.noisy_dbs.iter().enumerate() {
            assert_eq!(dbs.len(), cfg.noise_levels.len());
            for (pi, db) in dbs.iter().enumerate() {
                assert!(!is_consistent(db), "D_Q[p] must be inconsistent");
                assert_eq!(pool.balanced[q][pi].len(), cfg.balance_levels.len());
            }
        }
        // 2 queries × 2 noise levels × 2 balance levels (one join level).
        assert_eq!(pool.pair_count(), 8);
    }

    #[test]
    fn join_levels_are_respected() {
        let pool = smoke_pool();
        for pq in &pool.queries {
            assert_eq!(pq.base.join_count(), pq.join_level);
        }
        assert_eq!(pool.queries_at_join(1).len(), pool.config.queries_per_join);
    }

    #[test]
    fn balance_zero_is_boolean() {
        let pool = smoke_pool();
        for q in 0..pool.queries.len() {
            for pi in 0..pool.config.noise_levels.len() {
                for (bi, &b) in pool.config.balance_levels.iter().enumerate() {
                    let bq = &pool.balanced[q][pi][bi];
                    if b == 0.0 {
                        assert!(bq.query.is_boolean());
                    } else {
                        assert!(!bq.query.is_boolean());
                        assert!((0.0..=1.0).contains(&bq.achieved));
                    }
                }
            }
        }
    }

    #[test]
    fn pair_seeds_are_distinct() {
        let pool = smoke_pool();
        let mut seeds = std::collections::HashSet::new();
        for q in 0..pool.queries.len() {
            for pi in 0..pool.config.noise_levels.len() {
                for bi in 0..pool.config.balance_levels.len() {
                    assert!(seeds.insert(pool.pair_seed(q, pi, bi)));
                }
            }
        }
    }
}
