//! Executing the four schemes on database–query pairs.
//!
//! Mirrors the paper's measurement protocol (§7): the preprocessing step
//! (synopsis construction) runs once per pair and is timed separately —
//! its cost is identical for all schemes — and each scheme then runs with
//! its own timeout; a run that exceeds the budget is flagged as timed out
//! and accounted at the budget's value in the figure averages, matching
//! how the paper's plots saturate at the timeout with a timeout-count
//! annotation.

use crate::config::BenchConfig;
use cqa_common::{CqaError, Mt64, Result};
use cqa_core::{apx_cqa_on_synopses, Budget, Scheme, ALL_SCHEMES};
use cqa_query::ConjunctiveQuery;
use cqa_storage::Database;
use cqa_synopsis::{build_synopses, BuildOptions, SynopsisStats};
use crossbeam::channel;

/// One scheme's run on one pair.
#[derive(Debug, Clone, Copy)]
pub struct SchemeRun {
    /// Which scheme.
    pub scheme: Scheme,
    /// Wall seconds (the timeout value when timed out).
    pub secs: f64,
    /// Whether the budget was exhausted.
    pub timed_out: bool,
    /// Total samples drawn (0 when timed out early).
    pub samples: u64,
}

/// The outcome of one pair: shared preprocessing + all four schemes.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// Synopsis statistics (output size, homomorphic size, balance, …).
    pub stats: SynopsisStats,
    /// One entry per scheme, in [`ALL_SCHEMES`] order.
    pub runs: Vec<SchemeRun>,
}

/// Runs the full protocol on one `(D, Q)` pair.
///
/// Preprocessing gets its own deadline (the same budget); if *it* times
/// out the error is surfaced — the paper's preprocessing never exceeded
/// two minutes and ours is similarly far from its budget in practice.
pub fn run_pair(
    db: &Database,
    q: &ConjunctiveQuery,
    cfg: &BenchConfig,
    seed: u64,
) -> Result<PairOutcome> {
    let mut pair_span = cqa_obs::span_args("scenario/run_pair", seed, 0);
    let syn = build_synopses(
        db,
        q,
        BuildOptions {
            deadline: Some(cqa_common::Deadline::after_secs(cfg.timeout_secs * 10.0)),
            max_homs: None,
        },
    )?;
    let stats = SynopsisStats::of(&syn);
    let mut runs = Vec::with_capacity(ALL_SCHEMES.len());
    for (k, scheme) in ALL_SCHEMES.into_iter().enumerate() {
        let mut rng = Mt64::from_key(&[seed, k as u64, 0xC0FFEE]);
        let budget = Budget::with_timeout_secs(cfg.timeout_secs);
        let mut scheme_span = cqa_obs::span_args(run_span_name(scheme), seed, 0);
        let sw = cqa_common::Stopwatch::start();
        match apx_cqa_on_synopses(&syn, scheme, cfg.eps, cfg.delta, &budget, &mut rng) {
            Ok(res) => {
                scheme_span.set_args(seed, res.total_samples);
                runs.push(SchemeRun {
                    scheme,
                    secs: sw.elapsed_secs(),
                    timed_out: false,
                    samples: res.total_samples,
                });
            }
            Err(CqaError::TimedOut { .. }) => {
                runs.push(SchemeRun { scheme, secs: cfg.timeout_secs, timed_out: true, samples: 0 })
            }
            Err(e) => return Err(e),
        }
    }
    pair_span.set_args(seed, syn.entries.len() as u64);
    Ok(PairOutcome { stats, runs })
}

/// The trace-span name of one scheme's full run over a pair's synopses
/// (one level above the per-tuple `scheme/*` spans).
fn run_span_name(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::Natural => "run/Natural",
        Scheme::Kl => "run/KL",
        Scheme::Klm => "run/KLM",
        Scheme::Cover => "run/Cover",
    }
}

/// Runs `f` over `jobs` on `threads` workers, preserving order.
pub fn run_jobs<J, R, F>(jobs: Vec<J>, threads: usize, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let (tx, rx) = channel::unbounded::<(usize, J)>();
    for item in jobs.into_iter().enumerate() {
        tx.send(item).expect("channel open");
    }
    drop(tx);
    let (out_tx, out_rx) = channel::unbounded::<(usize, R)>();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let rx = rx.clone();
            let out_tx = out_tx.clone();
            let f = &f;
            s.spawn(move || {
                while let Ok((i, job)) = rx.recv() {
                    let r = f(job);
                    if out_tx.send((i, r)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(out_tx);
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    while let Ok((i, r)) = out_rx.recv() {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|s| s.expect("every job produced a result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::parse;
    use cqa_storage::ColumnType::*;
    use cqa_storage::{Schema, Value};

    /// `run_span_name` builds its names in match arms, which the cqa-lint
    /// token scan cannot tie to a call site — this cross-check keeps them
    /// in the central registry instead.
    #[test]
    fn run_span_names_are_registered() {
        for scheme in cqa_core::ALL_SCHEMES {
            assert!(
                cqa_obs::names::SPANS.contains(&run_span_name(scheme)),
                "{} missing from crates/obs/src/names.rs",
                run_span_name(scheme)
            );
        }
    }

    fn example_db() -> Database {
        let schema = Schema::builder()
            .relation("employee", &[("id", Int), ("name", Str), ("dept", Str)], Some(1))
            .build();
        let mut db = Database::new(schema);
        for (id, name, dept) in
            [(1, "Bob", "HR"), (1, "Bob", "IT"), (2, "Alice", "IT"), (2, "Tim", "IT")]
        {
            db.insert_named("employee", &[Value::Int(id), Value::str(name), Value::str(dept)])
                .unwrap();
        }
        db
    }

    #[test]
    fn run_pair_reports_all_four_schemes() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(x, n, d)").unwrap();
        let cfg = BenchConfig::smoke();
        let out = run_pair(&db, &q, &cfg, 1).unwrap();
        assert_eq!(out.runs.len(), 4);
        for run in &out.runs {
            assert!(!run.timed_out, "{} timed out on a trivial pair", run.scheme);
            assert!(run.secs >= 0.0);
            assert!(run.samples > 0);
        }
        assert_eq!(out.stats.output_size, 3);
    }

    #[test]
    fn run_pair_is_deterministic_given_a_seed() {
        let db = example_db();
        let q = parse(db.schema(), "Q(n) :- employee(x, n, d)").unwrap();
        let cfg = BenchConfig::smoke();
        let a = run_pair(&db, &q, &cfg, 99).unwrap();
        let b = run_pair(&db, &q, &cfg, 99).unwrap();
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.samples, y.samples);
        }
    }

    #[test]
    fn timeouts_are_flagged_per_scheme() {
        // Six conflicting blocks of four facts each and a Boolean query
        // demanding one specific fact from each: R = 4^-6, far too small
        // for the natural scheme to finish within a millisecond budget,
        // while the symbolic schemes sail through.
        let schema = Schema::builder().relation("r", &[("k", Int), ("v", Int)], Some(1)).build();
        let mut db = Database::new(schema);
        for k in 0..6 {
            for v in 0..4 {
                db.insert_named("r", &[Value::Int(k), Value::Int(v)]).unwrap();
            }
        }
        let q = parse(db.schema(), "Q() :- r(0, 0), r(1, 0), r(2, 0), r(3, 0), r(4, 0), r(5, 0)")
            .unwrap();
        let mut cfg = BenchConfig::smoke();
        cfg.timeout_secs = 0.01;
        let out = run_pair(&db, &q, &cfg, 3).unwrap();
        let natural = &out.runs[0];
        assert_eq!(natural.scheme, cqa_core::Scheme::Natural);
        assert!(natural.timed_out, "natural must exhaust a 10ms budget at R=4^-6");
        assert_eq!(natural.secs, cfg.timeout_secs);
        let kl = &out.runs[1];
        assert!(!kl.timed_out, "KL finishes: its expectation is 1 here");
    }

    #[test]
    fn run_jobs_preserves_order_and_runs_everything() {
        let jobs: Vec<u64> = (0..100).collect();
        let results = run_jobs(jobs, 8, |j| j * j);
        assert_eq!(results.len(), 100);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, (i * i) as u64);
        }
    }

    #[test]
    fn run_jobs_handles_edge_cases() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_jobs(empty, 4, |j: u32| j).is_empty());
        assert_eq!(run_jobs(vec![7], 16, |j| j + 1), vec![8]);
    }
}
