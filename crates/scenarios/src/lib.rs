#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The benchmark proper: test scenarios and the experiment pipelines that
//! regenerate every figure of the paper (§6–§7, Appendices E–H).
//!
//! * [`config`] — benchmark profiles (`quick` for CI-sized runs, `full`
//!   for paper-shaped grids), overridable via `CQA_*` environment
//!   variables.
//! * [`pool`] — builds the database–query pair set `P_H` (§6.2): a
//!   consistent TPC-H-like base `D_H`, SQG queries per join level, noisy
//!   databases `D_Q[p]` per noise level, and DQG-balanced queries
//!   `Q_p[q]` plus the Boolean `Q_p[0]`.
//! * [`runner`] — runs all four schemes on a pair with a shared
//!   preprocessing pass and per-scheme timeouts, in parallel across
//!   pairs.
//! * [`report`] — figure data structures, ASCII rendering, CSV output.
//! * [`figures`] — one pipeline per paper figure: `fig1` (noise),
//!   `fig2` (balance), `fig3` (preprocessing distribution), `fig4`
//!   (joins share), `fig5` (TPC-H/TPC-DS validation), and the take-home
//!   verdict table.

pub mod config;
pub mod figures;
pub mod pool;
pub mod report;
pub mod runner;

pub use config::BenchConfig;
pub use pool::{Pool, PoolQuery};
pub use report::{Figure, Series};
pub use runner::{run_pair, PairOutcome, SchemeRun};
