//! One pipeline per paper figure.
//!
//! Each function turns a [`Pool`] (or, for validation, freshly generated
//! workloads) into [`Figure`]s whose series are the four schemes — the
//! same plots the paper shows, re-measured on this implementation.

use crate::config::BenchConfig;
use crate::pool::Pool;
use crate::report::{Figure, Point, Series};
use crate::runner::{run_jobs, run_pair, PairOutcome};
use cqa_common::{percentile, Mt64, Result, RunningStats};
use cqa_core::ALL_SCHEMES;
use cqa_noise::{add_query_aware_noise, NoiseSpec};
use cqa_query::ConjunctiveQuery;
use cqa_storage::Database;
use cqa_synopsis::{build_synopses, BuildOptions};

/// A named database plus its named validation queries.
type Workload = (String, Database, Vec<(String, ConjunctiveQuery)>);

/// Aggregated per-scheme timing at one x value.
struct Cell {
    avg_secs: [f64; 4],
    timeouts: [usize; 4],
    total: usize,
}

/// Runs every `(db, query, seed)` job and aggregates per scheme.
/// A pair whose preprocessing fails (deadline) counts as a timeout for
/// every scheme.
fn run_cell(jobs: Vec<(&Database, &ConjunctiveQuery, u64)>, cfg: &BenchConfig) -> Cell {
    let total = jobs.len();
    let outcomes: Vec<Result<PairOutcome>> =
        run_jobs(jobs, cfg.threads, |(db, q, seed)| run_pair(db, q, cfg, seed));
    let mut avg = [0.0f64; 4];
    let mut touts = [0usize; 4];
    for oc in &outcomes {
        match oc {
            Ok(out) => {
                for (k, run) in out.runs.iter().enumerate() {
                    avg[k] += run.secs;
                    if run.timed_out {
                        touts[k] += 1;
                    }
                }
            }
            Err(_) => {
                for k in 0..4 {
                    avg[k] += cfg.timeout_secs;
                    touts[k] += 1;
                }
            }
        }
    }
    if total > 0 {
        for a in &mut avg {
            *a /= total as f64;
        }
    }
    Cell { avg_secs: avg, timeouts: touts, total }
}

fn scheme_series(points: Vec<(f64, Cell)>) -> Vec<Series> {
    ALL_SCHEMES
        .iter()
        .enumerate()
        .map(|(k, scheme)| Series {
            label: scheme.name().to_owned(),
            points: points
                .iter()
                .map(|(x, c)| Point {
                    x: *x,
                    y: c.avg_secs[k],
                    timeouts: c.timeouts[k],
                    total: c.total,
                })
                .collect(),
        })
        .collect()
}

fn balance_index(cfg: &BenchConfig, q: f64) -> usize {
    cfg.balance_levels
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| (*a - q).abs().partial_cmp(&(*b - q).abs()).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty balance grid")
}

/// Figure 1 (and appendix Figures 6–7): the noise scenarios
/// `Noise[q, j]` — execution time vs noise level, one figure per selected
/// `(balance, joins)` combination.
pub fn fig1_noise(pool: &Pool, selections: &[(f64, usize)]) -> Vec<Figure> {
    let cfg = &pool.config;
    let mut figures = Vec::new();
    for &(q_target, j) in selections {
        let bi = balance_index(cfg, q_target);
        let qs = pool.queries_at_join(j);
        let mut points = Vec::new();
        for (pi, &p) in cfg.noise_levels.iter().enumerate() {
            let jobs: Vec<_> = qs
                .iter()
                .map(|&qi| {
                    let (db, query) = pool.pair(qi, pi, bi);
                    (db, query, pool.pair_seed(qi, pi, bi))
                })
                .collect();
            let mut cell_span =
                cqa_obs::span_args("scenario/cell_noise", (p * 100.0).round() as u64, j as u64);
            let cell = run_cell(jobs, cfg);
            cell_span.set_args((p * 100.0).round() as u64, cell.total as u64);
            drop(cell_span);
            points.push((p * 100.0, cell));
        }
        figures.push(Figure {
            id: format!("noise_q{:02}_j{j}", (q_target * 10.0).round() as u32),
            title: format!("Noise[{q_target}, {j}]"),
            xlabel: "Noise (%)".into(),
            ylabel: "Execution time (s)".into(),
            series: scheme_series(points),
        });
    }
    figures
}

/// Figure 2 (and appendix Figures 8–9): the balance scenarios
/// `Balance[p, j]` — execution time vs balance level.
pub fn fig2_balance(pool: &Pool, selections: &[(f64, usize)]) -> Vec<Figure> {
    let cfg = &pool.config;
    let mut figures = Vec::new();
    for &(p_target, j) in selections {
        let pi = cfg
            .noise_levels
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (*a - p_target).abs().partial_cmp(&(*b - p_target).abs()).expect("finite")
            })
            .map(|(i, _)| i)
            .expect("non-empty noise grid");
        let qs = pool.queries_at_join(j);
        let mut points = Vec::new();
        for (bi, &b) in cfg.balance_levels.iter().enumerate() {
            let jobs: Vec<_> = qs
                .iter()
                .map(|&qi| {
                    let (db, query) = pool.pair(qi, pi, bi);
                    (db, query, pool.pair_seed(qi, pi, bi))
                })
                .collect();
            let mut cell_span =
                cqa_obs::span_args("scenario/cell_balance", (b * 100.0).round() as u64, j as u64);
            let cell = run_cell(jobs, cfg);
            cell_span.set_args((b * 100.0).round() as u64, cell.total as u64);
            drop(cell_span);
            points.push((b * 100.0, cell));
        }
        figures.push(Figure {
            id: format!("balance_p{:02}_j{j}", (p_target * 10.0).round() as u32),
            title: format!("Balance[{p_target}, {j}]"),
            xlabel: "Balance (%)".into(),
            ylabel: "Execution time (s)".into(),
            series: scheme_series(points),
        });
    }
    figures
}

/// Figure 3: the distribution of the preprocessing step's running time
/// over every pair of `P_H`, plus the paper's CDF claims ("for 80% of the
/// pairs … under 30 seconds").
pub fn fig3_preprocessing(pool: &Pool) -> (Figure, String) {
    let cfg = &pool.config;
    let mut jobs = Vec::new();
    for qi in 0..pool.queries.len() {
        for pi in 0..cfg.noise_levels.len() {
            for bi in 0..cfg.balance_levels.len() {
                jobs.push((qi, pi, bi));
            }
        }
    }
    let times: Vec<f64> = run_jobs(jobs, cfg.threads, |(qi, pi, bi)| {
        let (db, q) = pool.pair(qi, pi, bi);
        match build_synopses(db, q, BuildOptions::default()) {
            Ok(syn) => syn.build_time.as_secs_f64(),
            Err(_) => f64::NAN,
        }
    })
    .into_iter()
    .filter(|t| t.is_finite())
    .collect();

    let mut sorted = times.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let max = sorted.last().copied().unwrap_or(0.0);
    // Normalized histogram over ~20 buckets, like the paper's Figure 3.
    let buckets = 20usize;
    let width = (max / buckets as f64).max(1e-6);
    let mut counts = vec![0usize; buckets];
    for &t in &times {
        let b = ((t / width) as usize).min(buckets - 1);
        counts[b] += 1;
    }
    let points: Vec<Point> = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| Point {
            x: (i as f64 + 1.0) * width,
            y: c as f64 / times.len().max(1) as f64,
            timeouts: 0,
            total: times.len(),
        })
        .collect();
    let summary = format!(
        "preprocessing over {} pairs: median {:.3}s, p80 {:.3}s, p94 {:.3}s, max {:.3}s",
        times.len(),
        percentile(&sorted, 50.0),
        percentile(&sorted, 80.0),
        percentile(&sorted, 94.0),
        max
    );
    (
        Figure {
            id: "preprocessing_distribution".into(),
            title: "Distribution of preprocessing running time over P_H".into(),
            xlabel: "Running time (s)".into(),
            ylabel: "Fraction of pairs".into(),
            series: vec![Series { label: "fraction".into(), points }],
        },
        summary,
    )
}

/// Figure 4 (and appendix Figures 10–13): the join scenarios
/// `Joins[p, q]` — *share of running time* (%) per scheme vs join count.
pub fn fig4_joins(pool: &Pool, selections: &[(f64, f64)]) -> Vec<Figure> {
    let cfg = &pool.config;
    let mut figures = Vec::new();
    for &(p_target, q_target) in selections {
        let pi = cfg.noise_levels.iter().position(|&p| (p - p_target).abs() < 1e-9).unwrap_or(0);
        let bi = balance_index(cfg, q_target);
        let mut points = Vec::new();
        for &j in &cfg.joins {
            let qs = pool.queries_at_join(j);
            let jobs: Vec<_> = qs
                .iter()
                .map(|&qi| {
                    let (db, query) = pool.pair(qi, pi, bi);
                    (db, query, pool.pair_seed(qi, pi, bi))
                })
                .collect();
            let mut cell = run_cell(jobs, cfg);
            // Convert averages to shares of the per-join total.
            let sum: f64 = cell.avg_secs.iter().sum();
            if sum > 0.0 {
                for a in &mut cell.avg_secs {
                    *a = *a / sum * 100.0;
                }
            }
            points.push((j as f64, cell));
        }
        figures.push(Figure {
            id: format!(
                "joins_p{:02}_q{:02}",
                (p_target * 10.0).round() as u32,
                (q_target * 10.0).round() as u32
            ),
            title: format!("Joins[{p_target}, {q_target}]"),
            xlabel: "Joins".into(),
            ylabel: "Share of running time (%)".into(),
            series: scheme_series(points),
        });
    }
    figures
}

/// Figure 5 (and appendix Figures 14–15): the validation scenarios on the
/// TPC-H and TPC-DS workload queries — execution time vs noise, with the
/// measured balance (avg/std over the noise levels) in the title.
///
/// Queries that are empty at the configured scale are skipped and listed
/// in the returned notes.
pub fn fig5_validation(cfg: &BenchConfig) -> Result<(Vec<Figure>, Vec<String>)> {
    let mut rng = Mt64::new(cfg.seed ^ 0xFACE);
    let noise_levels: Vec<f64> = if cfg.noise_levels.len() >= 8 {
        (1..=8).map(|i| i as f64 / 10.0).collect()
    } else {
        cfg.noise_levels.iter().copied().filter(|&p| p <= 0.8).collect()
    };

    let mut workloads: Vec<Workload> = Vec::new();
    {
        let db =
            cqa_tpch::generate(cqa_tpch::TpchConfig { scale: cfg.scale, seed: rng.next_u64() });
        let qs = cqa_tpch::validation_queries(db.schema())?;
        workloads.push(("tpch".into(), db, qs));
    }
    {
        let db =
            cqa_tpcds::generate(cqa_tpcds::TpcdsConfig { scale: cfg.scale, seed: rng.next_u64() });
        let qs = cqa_tpcds::validation_queries(db.schema())?;
        workloads.push(("tpcds".into(), db, qs));
    }

    let mut figures = Vec::new();
    let mut notes = Vec::new();
    for (bench, base, queries) in &workloads {
        // Prepare all (query, noise level) jobs of this workload, then run
        // them across the worker pool — validation queries dominate a
        // `run_all` sweep, so this parallelism matters.
        let mut usable: Vec<&(String, ConjunctiveQuery)> = Vec::new();
        for pair in queries {
            // Skip queries with no consistent homomorphic images at this
            // scale (the noise generator requires a non-empty result).
            let syn = build_synopses(base, &pair.1, BuildOptions::default())?;
            if syn.hom_size == 0 {
                notes.push(format!("{bench}/{}: empty at scale {}; skipped", pair.0, cfg.scale));
            } else {
                usable.push(pair);
            }
        }
        // Noise databases are built sequentially (they share the master
        // RNG stream); scheme runs are the expensive part and parallelize.
        let mut jobs: Vec<(usize, f64, Database)> = Vec::new();
        let mut failed_queries: Vec<usize> = Vec::new();
        for (qi, (name, q)) in usable.iter().enumerate() {
            for &p in &noise_levels {
                let spec = NoiseSpec { p, lmin: cfg.block_min, umax: cfg.block_max };
                match add_query_aware_noise(base, q, spec, &mut rng) {
                    Ok((noisy, _)) => jobs.push((qi, p, noisy)),
                    Err(_) => {
                        notes.push(format!("{bench}/{name}: noise generation failed at p={p}"));
                        failed_queries.push(qi);
                        break;
                    }
                }
            }
        }
        let outcomes = crate::runner::run_jobs(jobs, cfg.threads, |(qi, p, noisy)| {
            let (name, q) = usable[qi];
            let seed = cfg.seed ^ ((p * 1000.0) as u64) ^ name.len() as u64;
            (qi, p, run_pair(&noisy, q, cfg, seed))
        });

        for (qi, (name, _)) in usable.iter().enumerate() {
            if failed_queries.contains(&qi) {
                continue;
            }
            let mut balance_stats = RunningStats::new();
            let mut points = Vec::new();
            for (_, p, outcome) in outcomes.iter().filter(|(j, _, _)| *j == qi) {
                let cell = match outcome {
                    Ok(out) => {
                        balance_stats.push(out.stats.balance);
                        let mut cell = Cell { avg_secs: [0.0; 4], timeouts: [0; 4], total: 1 };
                        for (k, run) in out.runs.iter().enumerate() {
                            cell.avg_secs[k] = run.secs;
                            cell.timeouts[k] = run.timed_out as usize;
                        }
                        cell
                    }
                    Err(_) => Cell { avg_secs: [cfg.timeout_secs; 4], timeouts: [1; 4], total: 1 },
                };
                points.push((p * 100.0, cell));
            }
            if points.is_empty() {
                continue;
            }
            figures.push(Figure {
                id: format!("validation_{bench}_{}", name.to_lowercase()),
                title: format!(
                    "Validation[{name}] — balance avg/std: {:.2}/{:.2}",
                    balance_stats.mean() * 100.0,
                    balance_stats.std_dev() * 100.0
                ),
                xlabel: "Noise (%)".into(),
                ylabel: "Execution time (s)".into(),
                series: scheme_series(points),
            });
        }
    }
    Ok((figures, notes))
}

/// The per-figure winners: which scheme accumulated the least total time.
/// Used by `run_all` to print the take-home verdict table (§7.2).
pub fn winners(figures: &[Figure]) -> Vec<(String, String)> {
    figures
        .iter()
        .filter_map(|fig| {
            let best = fig
                .series
                .iter()
                .min_by(|a, b| {
                    let ta: f64 = a.points.iter().map(|p| p.y).sum();
                    let tb: f64 = b.points.iter().map(|p| p.y).sum();
                    ta.partial_cmp(&tb).expect("finite")
                })?
                .label
                .clone();
            Some((fig.id.clone(), best))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_pool() -> Pool {
        Pool::build(BenchConfig::smoke()).expect("smoke pool")
    }

    #[test]
    fn fig1_produces_full_series() {
        let pool = smoke_pool();
        let figs = fig1_noise(&pool, &[(0.0, 1), (0.5, 2)]);
        assert_eq!(figs.len(), 2);
        for fig in &figs {
            assert_eq!(fig.series.len(), 4);
            for s in &fig.series {
                assert_eq!(s.points.len(), pool.config.noise_levels.len());
                for p in &s.points {
                    assert!(p.y >= 0.0);
                    assert!(p.timeouts <= p.total);
                }
            }
        }
    }

    #[test]
    fn fig2_spans_balance_grid() {
        let pool = smoke_pool();
        let figs = fig2_balance(&pool, &[(0.3, 1)]);
        assert_eq!(figs.len(), 1);
        assert_eq!(figs[0].series[0].points.len(), pool.config.balance_levels.len());
    }

    #[test]
    fn fig3_histogram_is_a_distribution() {
        let pool = smoke_pool();
        let (fig, summary) = fig3_preprocessing(&pool);
        let total: f64 = fig.series[0].points.iter().map(|p| p.y).sum();
        assert!((total - 1.0).abs() < 1e-9, "histogram sums to {total}");
        assert!(summary.contains("pairs"));
    }

    #[test]
    fn fig4_shares_sum_to_one_hundred() {
        let pool = smoke_pool();
        let figs = fig4_joins(&pool, &[(0.3, 0.5)]);
        for fig in &figs {
            let n_points = fig.series[0].points.len();
            for i in 0..n_points {
                let sum: f64 = fig.series.iter().map(|s| s.points[i].y).sum();
                assert!((sum - 100.0).abs() < 1e-6, "shares sum to {sum}");
            }
        }
    }

    #[test]
    fn winners_picks_smallest_total() {
        let fig = Figure {
            id: "f".into(),
            title: "t".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![
                Series {
                    label: "A".into(),
                    points: vec![Point { x: 0.0, y: 2.0, timeouts: 0, total: 1 }],
                },
                Series {
                    label: "B".into(),
                    points: vec![Point { x: 0.0, y: 1.0, timeouts: 0, total: 1 }],
                },
            ],
        };
        assert_eq!(winners(&[fig]), vec![("f".to_owned(), "B".to_owned())]);
    }
}
