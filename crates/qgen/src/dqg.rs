//! The dynamic query generator (§6.1): tuning the balance of a query.
//!
//! DQG takes a starting CQ `Q`, a database `D`, and target balances
//! `b₁, …, bₙ`; it searches over projections of `Q` (random subsets of the
//! attributes) and returns, for each target, the projection whose balance
//! w.r.t. `D` is closest.
//!
//! Key optimization over the paper's implementation (which re-ran each
//! candidate against PostgreSQL for up to 12 hours): the set of consistent
//! homomorphisms and the homomorphic size `|⋃ᵢHᵢ|` do not depend on the
//! projection. One evaluation pass caches the distinct consistent variable
//! bindings; every candidate projection's output size is then a single
//! hash-set pass over the cache, so thousands of candidates cost what one
//! cost the paper.

use cqa_common::{CqaError, Mt64, Result};
use cqa_query::{for_each_hom, ConjunctiveQuery, EvalOptions, Term, VarId};
use cqa_storage::{Database, Datum, RelId};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::ops::ControlFlow;

/// One balanced query produced by DQG.
#[derive(Debug, Clone)]
pub struct DqgResult {
    /// The requested balance.
    pub target: f64,
    /// The balance actually achieved on `D`.
    pub achieved: f64,
    /// The projected query.
    pub query: ConjunctiveQuery,
}

/// Cached evaluation: distinct consistent bindings + homomorphic size.
struct EvalCache {
    bindings: Vec<Vec<Datum>>,
    hom_size: usize,
}

fn evaluate_once(db: &Database, q: &ConjunctiveQuery) -> Result<EvalCache> {
    let mut rel_blocks: HashMap<RelId, std::sync::Arc<cqa_storage::RelationBlocks>> =
        HashMap::new();
    for atom in &q.atoms {
        rel_blocks.entry(atom.rel).or_insert_with(|| db.blocks(atom.rel));
    }
    let mut bindings: HashSet<Vec<Datum>> = HashSet::new();
    let mut images: HashSet<Box<[(RelId, u32, u32)]>> = HashSet::new();
    for_each_hom(db, q, EvalOptions::default(), |binding, facts| {
        let mut image: Vec<(RelId, u32, u32)> = q
            .atoms
            .iter()
            .zip(facts)
            .map(|(atom, &row)| {
                let (bid, tid) = rel_blocks[&atom.rel].of_row(row);
                (atom.rel, bid, tid)
            })
            .collect();
        image.sort_unstable();
        image.dedup();
        let consistent =
            image.windows(2).all(|w| !(w[0].0 == w[1].0 && w[0].1 == w[1].1 && w[0].2 != w[1].2));
        if consistent {
            bindings.insert(binding.to_vec());
            images.insert(image.into_boxed_slice());
        }
        ControlFlow::Continue(())
    })?;
    Ok(EvalCache { bindings: bindings.into_iter().collect(), hom_size: images.len() })
}

/// Balance of the projection `head` given the cached bindings.
fn balance_of(cache: &EvalCache, head: &[VarId]) -> f64 {
    if cache.hom_size == 0 {
        return 0.0;
    }
    let mut seen: HashSet<Vec<Datum>> = HashSet::with_capacity(cache.bindings.len());
    for b in &cache.bindings {
        seen.insert(head.iter().map(|v| b[v.idx()]).collect());
    }
    seen.len() as f64 / cache.hom_size as f64
}

/// Runs DQG: for each target balance, the best projection found within the
/// iteration budget (the paper's time budget `t`, expressed as candidate
/// count thanks to the cached evaluation).
pub fn dqg(
    db: &Database,
    q: &ConjunctiveQuery,
    targets: &[f64],
    iterations: usize,
    rng: &mut Mt64,
) -> Result<Vec<DqgResult>> {
    for &t in targets {
        if !(0.0..=1.0).contains(&t) {
            return Err(CqaError::InvalidParameter(format!("balance target {t} out of [0,1]")));
        }
    }
    let cache = evaluate_once(db, q)?;
    if cache.hom_size == 0 {
        return Err(CqaError::InvalidParameter(
            "query has no consistent homomorphic images; balance is undefined".into(),
        ));
    }

    // The attribute slots a projection may select (variable positions).
    let var_slots: Vec<VarId> = {
        let mut vs: BTreeSet<VarId> = BTreeSet::new();
        for atom in &q.atoms {
            for t in &atom.terms {
                if let Term::Var(v) = t {
                    vs.insert(*v);
                }
            }
        }
        vs.into_iter().collect()
    };

    // Candidate pool: the full projection, every single variable, and
    // random subsets up to the iteration budget.
    let mut pool: Vec<Vec<VarId>> = Vec::with_capacity(iterations + var_slots.len() + 1);
    pool.push(var_slots.clone());
    for &v in &var_slots {
        pool.push(vec![v]);
    }
    for _ in 0..iterations {
        let k = 1 + rng.index(var_slots.len());
        let mut head: Vec<VarId> =
            rng.sample_indices(var_slots.len(), k).into_iter().map(|i| var_slots[i]).collect();
        head.sort();
        pool.push(head);
    }
    pool.sort();
    pool.dedup();

    let scored: Vec<(f64, &Vec<VarId>)> =
        pool.iter().map(|head| (balance_of(&cache, head), head)).collect();

    let mut out = Vec::with_capacity(targets.len());
    for &target in targets {
        let (achieved, head) = scored
            .iter()
            .min_by(|(a, _), (b, _)| {
                (a - target).abs().partial_cmp(&(b - target).abs()).expect("finite balances")
            })
            .expect("pool is non-empty");
        let name = format!("{}_b{:02}", q.name, (target * 100.0).round() as u32);
        out.push(DqgResult {
            target,
            achieved: *achieved,
            query: q.with_head(name, (*head).clone())?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::parse;
    use cqa_storage::ColumnType::*;
    use cqa_storage::{Schema, Value};
    use cqa_synopsis::{build_synopses, BuildOptions};

    /// A database engineered to offer a range of balances: r(k, a, b) where
    /// `a` is highly selective and `b` nearly constant.
    fn graded_db() -> Database {
        let schema =
            Schema::builder().relation("r", &[("k", Int), ("a", Int), ("b", Int)], Some(1)).build();
        let mut db = Database::new(schema);
        for k in 0..40 {
            db.insert_named("r", &[Value::Int(k), Value::Int(k), Value::Int(k % 2)]).unwrap();
        }
        db
    }

    #[test]
    fn achieved_balance_matches_synopsis_balance() {
        // DQG's internal balance must agree with the synopsis builder's.
        let db = graded_db();
        let q = parse(db.schema(), "Q(k, a, b) :- r(k, a, b)").unwrap();
        let mut rng = Mt64::new(1);
        let results = dqg(&db, &q, &[0.0, 0.5, 1.0], 50, &mut rng).unwrap();
        for r in &results {
            let syn = build_synopses(&db, &r.query, BuildOptions::default()).unwrap();
            assert!(
                (syn.balance() - r.achieved).abs() < 1e-12,
                "DQG balance {} vs synopsis {} for target {}",
                r.achieved,
                syn.balance(),
                r.target
            );
        }
    }

    #[test]
    fn extreme_targets_are_approached() {
        let db = graded_db();
        let q = parse(db.schema(), "Q(k, a, b) :- r(k, a, b)").unwrap();
        let mut rng = Mt64::new(2);
        let results = dqg(&db, &q, &[0.05, 1.0], 100, &mut rng).unwrap();
        // Balance 1.0 achievable with the key attribute projected; 0.05 is
        // approached by the near-constant attribute (2/40).
        assert!(results[1].achieved == 1.0);
        assert!(results[0].achieved <= 0.1, "low target achieved {}", results[0].achieved);
    }

    #[test]
    fn results_align_with_targets_in_order() {
        let db = graded_db();
        let q = parse(db.schema(), "Q(k, a, b) :- r(k, a, b)").unwrap();
        let mut rng = Mt64::new(3);
        let targets = [0.1, 0.5, 0.9];
        let results = dqg(&db, &q, &targets, 100, &mut rng).unwrap();
        assert_eq!(results.len(), 3);
        for (r, &t) in results.iter().zip(&targets) {
            assert_eq!(r.target, t);
            assert!(!r.query.head.is_empty() || r.achieved < 0.2);
        }
        // Achieved balances are monotone along the targets here.
        assert!(results[0].achieved <= results[1].achieved);
        assert!(results[1].achieved <= results[2].achieved);
    }

    #[test]
    fn empty_query_is_rejected() {
        let db = graded_db();
        let q = parse(db.schema(), "Q(k) :- r(k, 999, b)").unwrap();
        let mut rng = Mt64::new(4);
        assert!(dqg(&db, &q, &[0.5], 10, &mut rng).is_err());
    }

    #[test]
    fn invalid_targets_are_rejected() {
        let db = graded_db();
        let q = parse(db.schema(), "Q(k) :- r(k, a, b)").unwrap();
        let mut rng = Mt64::new(5);
        assert!(dqg(&db, &q, &[1.5], 10, &mut rng).is_err());
    }

    #[test]
    fn inconsistent_homs_are_excluded_from_the_cache() {
        // Join that forces two facts from one block: only consistent homs
        // count toward balance.
        let schema = Schema::builder().relation("r", &[("k", Int), ("a", Int)], Some(1)).build();
        let mut db = Database::new(schema);
        db.insert_named("r", &[Value::Int(1), Value::Int(10)]).unwrap();
        db.insert_named("r", &[Value::Int(1), Value::Int(20)]).unwrap();
        let q = parse(db.schema(), "Q(x, y) :- r(k, x), r(k2, y)").unwrap();
        let mut rng = Mt64::new(6);
        let results = dqg(&db, &q, &[1.0], 20, &mut rng).unwrap();
        // Consistent homs: only (10,10) and (20,20) via the same fact twice
        // is impossible here (k≠k2 unify separately)... the pairs (10,20)
        // and (20,10) need both facts of the block → inconsistent. The
        // diagonal pairs use a single fact → consistent.
        let syn = build_synopses(&db, &results[0].query, BuildOptions::default()).unwrap();
        assert!((results[0].achieved - syn.balance()).abs() < 1e-12);
    }
}
