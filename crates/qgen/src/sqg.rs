//! The static query generator (Appendix D).
//!
//! SQG takes a schema, the number of joins `j`, the number of constant
//! occurrences `c`, and a projection fraction `p`; it samples `j` join
//! conditions from the foreign-key joinable attribute pairs, `c` constant
//! conditions with values drawn from the data (the paper's function `f`
//! maps each attribute to the constants occurring in `D_H` at that
//! attribute), and finally projects `⌈p · |T|⌉` of the attributes.
//!
//! One deliberate refinement over a literal reading of the appendix: when
//! the query already has atoms, the next join condition is anchored at an
//! attribute of an *existing* atom, so generated queries are connected.
//! Disconnected CQs multiply unrelated result sets and are useless as
//! stress tests; the paper's own generated queries are connected.

use cqa_common::{CqaError, Mt64, Result};
use cqa_query::{Atom, ConjunctiveQuery, Term};
use cqa_storage::{Database, RelId};
use std::collections::BTreeMap;

/// Static query parameters.
#[derive(Debug, Clone, Copy)]
pub struct SqgSpec {
    /// Number of join conditions `j`.
    pub joins: usize,
    /// Number of constant occurrences `c`.
    pub constants: usize,
    /// Fraction `0 ≤ p ≤ 1` of attributes to project.
    pub proj_fraction: f64,
}

/// Union-find over attribute slots.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: Vec::new() }
    }
    fn add(&mut self) -> usize {
        let i = self.parent.len();
        self.parent.push(i);
        i
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

/// Generates a random CQ with the given static parameters over the
/// database's schema, sampling constants from the database's contents.
///
/// The query may evaluate to the empty set on `db`; callers (like the
/// scenario builder) retry with fresh randomness until non-empty, exactly
/// as the paper keeps "the CQs whose evaluation over `D_H` is non-empty".
pub fn sqg(db: &Database, spec: SqgSpec, rng: &mut Mt64) -> Result<ConjunctiveQuery> {
    let schema = db.schema();
    if !(0.0..=1.0).contains(&spec.proj_fraction) {
        return Err(CqaError::InvalidParameter(format!(
            "projection fraction must be in [0,1], got {}",
            spec.proj_fraction
        )));
    }
    let pairs = schema.joinable_pairs();
    if spec.joins > 0 && pairs.is_empty() {
        return Err(CqaError::InvalidParameter(
            "schema has no joinable attribute pairs but joins were requested".into(),
        ));
    }

    // One atom per relation; slot (rel, pos) ↦ union-find node.
    let mut uf = UnionFind::new();
    let mut slots: BTreeMap<(RelId, usize), usize> = BTreeMap::new();
    let mut in_query: Vec<RelId> = Vec::new();

    let add_relation = |rel: RelId,
                        uf: &mut UnionFind,
                        slots: &mut BTreeMap<(RelId, usize), usize>,
                        in_query: &mut Vec<RelId>| {
        if in_query.contains(&rel) {
            return;
        }
        in_query.push(rel);
        for pos in 0..schema.relation(rel).arity() {
            let node = uf.add();
            slots.insert((rel, pos), node);
        }
    };

    // Join conditions.
    let mut joins_placed = 0usize;
    let mut attempts = 0usize;
    while joins_placed < spec.joins {
        attempts += 1;
        if attempts > 64 * (spec.joins + 1) {
            return Err(CqaError::InvalidParameter(format!(
                "could not place {} join conditions over this schema",
                spec.joins
            )));
        }
        // Anchor at an existing atom when there is one (connectivity).
        let candidates: Vec<_> = if in_query.is_empty() {
            pairs.clone()
        } else {
            pairs.iter().copied().filter(|((r, _), _)| in_query.contains(r)).collect()
        };
        if candidates.is_empty() {
            return Err(CqaError::InvalidParameter(
                "no joinable attributes reachable from the current atoms".into(),
            ));
        }
        let ((r, k), (p, l)) = candidates[rng.index(candidates.len())];
        if r == p {
            continue; // no self-joins: one atom per relation
        }
        add_relation(r, &mut uf, &mut slots, &mut in_query);
        add_relation(p, &mut uf, &mut slots, &mut in_query);
        let (a, b) = (slots[&(r, k)], slots[&(p, l)]);
        if uf.union(a, b) {
            joins_placed += 1;
        }
    }
    if in_query.is_empty() {
        // j = 0: a single random relation atom.
        let rel = RelId(rng.index(schema.len()) as u32);
        add_relation(rel, &mut uf, &mut slots, &mut in_query);
    }

    // Constant conditions: only on slots not participating in a join
    // (a constant inside a join class would silently change the join).
    let mut constants: BTreeMap<(RelId, usize), cqa_storage::Value> = BTreeMap::new();
    let mut class_sizes: BTreeMap<usize, usize> = BTreeMap::new();
    for &node in slots.values() {
        *class_sizes.entry(uf.find(node)).or_default() += 1;
    }
    let free_slots: Vec<(RelId, usize)> = slots
        .iter()
        .filter(|(_, &node)| class_sizes[&uf.find(node)] == 1)
        .map(|(&slot, _)| slot)
        .collect();
    if spec.constants > free_slots.len() {
        return Err(CqaError::InvalidParameter(format!(
            "cannot place {} constants: only {} non-join attribute slots",
            spec.constants,
            free_slots.len()
        )));
    }
    for ix in rng.sample_indices(free_slots.len(), spec.constants) {
        let (rel, pos) = free_slots[ix];
        let table = db.table(rel);
        if table.is_empty() {
            return Err(CqaError::InvalidParameter(format!(
                "relation {} is empty; cannot sample a constant",
                schema.relation(rel).name
            )));
        }
        let row = table.row(rng.below(table.len() as u64) as u32);
        constants.insert((rel, pos), db.resolve(row[pos]));
    }

    // Assign variables: one per union-find class among non-constant slots.
    let mut class_var: BTreeMap<usize, u32> = BTreeMap::new();
    let mut var_names: Vec<String> = Vec::new();
    let mut atoms = Vec::new();
    let mut rels_sorted = in_query.clone();
    rels_sorted.sort();
    for &rel in &rels_sorted {
        let mut terms = Vec::with_capacity(schema.relation(rel).arity());
        for pos in 0..schema.relation(rel).arity() {
            if let Some(v) = constants.get(&(rel, pos)) {
                terms.push(Term::Const(v.clone()));
                continue;
            }
            let class = uf.find(slots[&(rel, pos)]);
            let var = *class_var.entry(class).or_insert_with(|| {
                let id = var_names.len() as u32;
                var_names.push(format!("v{id}"));
                id
            });
            terms.push(Term::Var(cqa_query::VarId(var)));
        }
        atoms.push(Atom { rel, terms });
    }

    // Projection: ⌈p · |T|⌉ random attribute slots; the variables at the
    // chosen (non-constant) slots become the head.
    let all_slots: Vec<(RelId, usize)> = slots.keys().copied().collect();
    let want = (spec.proj_fraction * all_slots.len() as f64).ceil() as usize;
    let chosen = rng.sample_indices(all_slots.len(), want.min(all_slots.len()));
    let mut head: Vec<cqa_query::VarId> = Vec::new();
    for ix in chosen {
        let slot = all_slots[ix];
        if constants.contains_key(&slot) {
            continue;
        }
        let class = uf.find(slots[&slot]);
        let v = cqa_query::VarId(class_var[&class]);
        if !head.contains(&v) {
            head.push(v);
        }
    }
    head.sort();

    ConjunctiveQuery::new(format!("Q_j{}_c{}", spec.joins, spec.constants), head, atoms, var_names)
}

/// Draws `n` SQG queries that are pairwise distinct **up to
/// α-equivalence**, judged by their canonical fingerprints
/// (`canonical_fingerprint`). Plain [`sqg`] resamples
/// the same join tree under different variable orders surprisingly often
/// at low join counts; deduplicating on the canonical form keeps a
/// workload from silently repeating one structural query.
///
/// Draws failing `spec` or duplicating an earlier draw are discarded;
/// after `max_attempts` total draws the queries found so far are returned
/// (possibly fewer than `n` — small schemas genuinely exhaust their
/// distinct shapes).
pub fn sqg_distinct(
    db: &Database,
    spec: SqgSpec,
    n: usize,
    max_attempts: usize,
    rng: &mut Mt64,
) -> Vec<ConjunctiveQuery> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    for _ in 0..max_attempts {
        if out.len() == n {
            break;
        }
        let Ok(q) = sqg(db, spec, rng) else { continue };
        if seen.insert(q.canonical_fingerprint()) {
            out.push(q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_tpch::{generate, TpchConfig};

    fn db() -> Database {
        generate(TpchConfig::tiny())
    }

    #[test]
    fn respects_join_count() {
        let db = db();
        let mut rng = Mt64::new(1);
        for j in 0..=5 {
            let q =
                sqg(&db, SqgSpec { joins: j, constants: 0, proj_fraction: 1.0 }, &mut rng).unwrap();
            assert_eq!(q.join_count(), j, "query {}", q.display(db.schema()));
        }
    }

    #[test]
    fn sqg_distinct_yields_canonically_distinct_queries() {
        let db = db();
        let mut rng = Mt64::new(8);
        let spec = SqgSpec { joins: 1, constants: 0, proj_fraction: 1.0 };
        let qs = sqg_distinct(&db, spec, 10, 2_000, &mut rng);
        assert!(qs.len() >= 2, "tiny TPC-H has several 1-join shapes");
        let fps: std::collections::HashSet<u64> =
            qs.iter().map(|q| q.canonical_fingerprint()).collect();
        assert_eq!(fps.len(), qs.len(), "fingerprints must be pairwise distinct");
        // Plain sqg over the same number of draws does repeat shapes —
        // that's the redundancy sqg_distinct removes.
        let mut rng = Mt64::new(8);
        let mut plain = std::collections::HashSet::new();
        let mut draws = 0;
        for _ in 0..2_000 {
            if let Ok(q) = sqg(&db, spec, &mut rng) {
                plain.insert(q.canonical_fingerprint());
                draws += 1;
            }
        }
        assert!(plain.len() < draws, "expected α-equivalent repeats among {draws} draws");
    }

    #[test]
    fn respects_constant_count() {
        let db = db();
        let mut rng = Mt64::new(2);
        for c in 0..=3 {
            let q =
                sqg(&db, SqgSpec { joins: 2, constants: c, proj_fraction: 1.0 }, &mut rng).unwrap();
            assert_eq!(q.constant_count(), c);
        }
    }

    #[test]
    fn constants_come_from_the_data() {
        let db = db();
        let mut rng = Mt64::new(3);
        for _ in 0..10 {
            let q =
                sqg(&db, SqgSpec { joins: 1, constants: 2, proj_fraction: 1.0 }, &mut rng).unwrap();
            for atom in &q.atoms {
                for (pos, t) in atom.terms.iter().enumerate() {
                    if let Term::Const(v) = t {
                        // The constant value must occur at that attribute.
                        let ix = db.index(atom.rel, &[pos as u16]);
                        let d = db.lookup_value(v).expect("value sampled from db");
                        assert!(!ix.get(&[d]).is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn generated_queries_are_connected() {
        let db = db();
        let mut rng = Mt64::new(4);
        for _ in 0..20 {
            let q =
                sqg(&db, SqgSpec { joins: 4, constants: 2, proj_fraction: 0.5 }, &mut rng).unwrap();
            // Connectivity: the atom-sharing graph over variables has one
            // component.
            let n = q.atoms.len();
            let mut reach = vec![false; n];
            reach[0] = true;
            loop {
                let mut changed = false;
                for i in 0..n {
                    if reach[i] {
                        continue;
                    }
                    let connected = q.atoms[i].vars().any(|v| {
                        q.atoms
                            .iter()
                            .enumerate()
                            .any(|(j, a)| reach[j] && a.vars().any(|w| w == v))
                    });
                    if connected {
                        reach[i] = true;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            assert!(reach.iter().all(|&r| r), "disconnected query {}", q.display(db.schema()));
        }
    }

    #[test]
    fn zero_projection_gives_boolean_query() {
        let db = db();
        let mut rng = Mt64::new(5);
        let q = sqg(&db, SqgSpec { joins: 2, constants: 1, proj_fraction: 0.0 }, &mut rng).unwrap();
        assert!(q.is_boolean());
    }

    #[test]
    fn full_projection_covers_all_variable_classes() {
        let db = db();
        let mut rng = Mt64::new(6);
        let q = sqg(&db, SqgSpec { joins: 1, constants: 0, proj_fraction: 1.0 }, &mut rng).unwrap();
        let body: std::collections::BTreeSet<_> = q.body_vars();
        let head: std::collections::BTreeSet<_> = q.head.iter().copied().collect();
        assert_eq!(body, head);
    }

    #[test]
    fn invalid_fraction_is_rejected() {
        let db = db();
        let mut rng = Mt64::new(7);
        assert!(sqg(&db, SqgSpec { joins: 1, constants: 0, proj_fraction: 1.5 }, &mut rng).is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let db = db();
        let mut r1 = Mt64::new(8);
        let mut r2 = Mt64::new(8);
        let spec = SqgSpec { joins: 3, constants: 2, proj_fraction: 0.5 };
        let a = sqg(&db, spec, &mut r1).unwrap();
        let b = sqg(&db, spec, &mut r2).unwrap();
        assert_eq!(a, b);
    }
}
