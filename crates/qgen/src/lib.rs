#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Query generators: the *static* query generator (SQG, Appendix D) and
//! the *dynamic* query generator (DQG, §6.1).
//!
//! * [`sqg()`] tunes the static parameters of a CQ — number of joins,
//!   number of constant occurrences, fraction of projected attributes —
//!   by sampling join conditions from the schema's foreign-key joinable
//!   pairs and constants from the values actually occurring in the data.
//! * [`dqg()`] tunes the central *dynamic* parameter, the **balance**
//!   (output size / homomorphic size), by searching over random
//!   projections of a starting query. Because the set of consistent
//!   homomorphisms and the homomorphic size are independent of the
//!   projection, one evaluation pass suffices for the whole search — the
//!   paper runs its DQG for 12 hours against PostgreSQL; here each
//!   candidate projection costs one hash-set pass over the cached
//!   bindings.

pub mod dqg;
pub mod sqg;

pub use dqg::{dqg, DqgResult};
pub use sqg::{sqg, sqg_distinct, SqgSpec};
