//! The TPC-H validation workload (Appendix F).
//!
//! The paper instantiates nine positive TPC-H query templates
//! (1, 4, 5, 6, 8, 10, 12, 14, 19), strips aggregates from the `SELECT`
//! clause, and uses them as validation scenarios. We express the same
//! join/filter structures as CQs over our schema. Range predicates (date
//! windows, price bands) become categorical equality constants — the only
//! selection our CQ dialect supports — chosen so each query keeps the
//! balance character the paper reports (categorical outputs → balance ≈ 0;
//! wide outputs → higher balance).

use cqa_common::Result;
use cqa_query::{parse, ConjunctiveQuery};
use cqa_storage::Schema;

/// The validation queries as `(name, query)` pairs, in template order.
pub fn validation_queries(schema: &Schema) -> Result<Vec<(String, ConjunctiveQuery)>> {
    let specs: &[(&str, &str)] = &[
        // Q1: pricing summary — lineitem scan, categorical output.
        ("Q1H", "Q1H(rf, ls) :- lineitem(ok, ln, pk, sk, qty, ep, di, rf, ls, sd, 'MAIL')"),
        // Q4: order priority checking — orders ⋈ lineitem, categorical output.
        (
            "Q4H",
            "Q4H(pr) :- orders(ok, ck, 'F', tp, od, pr, cl), \
             lineitem(ok, ln, pk, sk, qty, ep, di, rf, ls, sd, sm)",
        ),
        // Q5: local supplier volume — the classic 6-way join with the
        // customer and supplier in the same nation; categorical output.
        (
            "Q5H",
            "Q5H(nn) :- customer(ck, cn, nk, seg, bal), \
             orders(ok, ck, st, tp, od, pr, cl), \
             lineitem(ok, ln, pk, sk, qty, ep, di, rf, ls, sd, sm), \
             supplier(sk, sn, nk, sbal), nation(nk, nn, rk), region(rk, 'ASIA')",
        ),
        // Q6: forecasting revenue change — Boolean selection on lineitem.
        ("Q6H", "Q6H() :- lineitem(ok, ln, pk, sk, 25, ep, 5, rf, ls, sd, sm)"),
        // Q8: national market share — widest join; date output gives
        // non-trivial balance.
        (
            "Q8H",
            "Q8H(od) :- part(pk, pn, br, 'ECONOMY BRASS', psz, cont, rp), \
             lineitem(ok, ln, pk, sk, qty, ep, di, rf, ls, sd, sm), \
             orders(ok, ck, st, tp, od, pr, cl), customer(ck, cn, cnk, seg, bal), \
             nation(cnk, nn, rk), region(rk, 'AMERICA')",
        ),
        // Q10: returned item reporting — customer identity output gives
        // moderate balance.
        (
            "Q10H",
            "Q10H(cn, nn) :- customer(ck, cn, nk, seg, bal), \
             orders(ok, ck, st, tp, od, pr, cl), \
             lineitem(ok, ln, pk, sk, qty, ep, di, 'R', ls, sd, sm), \
             nation(nk, nn, rk)",
        ),
        // Q12: shipping mode / order priority — categorical output.
        (
            "Q12H",
            "Q12H(pr) :- orders(ok, ck, st, tp, od, pr, cl), \
             lineitem(ok, ln, pk, sk, qty, ep, di, rf, ls, sd, 'SHIP')",
        ),
        // Q14: promotion effect — lineitem ⋈ part, part-type output.
        (
            "Q14H",
            "Q14H(pt) :- lineitem(ok, ln, pk, sk, qty, ep, di, 'N', ls, sd, sm), \
             part(pk, pn, br, pt, psz, cont, rp)",
        ),
        // Q19: discounted revenue — brand/container/ship-mode constants,
        // quantity output.
        (
            "Q19H",
            "Q19H(qty) :- lineitem(ok, ln, pk, sk, qty, ep, di, rf, ls, sd, 'AIR'), \
             part(pk, pn, 'Brand#12', pt, psz, 'SM CASE', rp)",
        ),
    ];
    specs.iter().map(|(name, text)| Ok(((*name).to_owned(), parse(schema, text)?))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchConfig};
    use crate::schema::tpch_schema;
    use cqa_query::answers;

    #[test]
    fn all_validation_queries_parse() {
        let s = tpch_schema();
        let qs = validation_queries(&s).unwrap();
        assert_eq!(qs.len(), 9);
        let names: Vec<_> = qs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Q1H", "Q4H", "Q5H", "Q6H", "Q8H", "Q10H", "Q12H", "Q14H", "Q19H"]);
    }

    #[test]
    fn q6_is_boolean_and_others_are_not() {
        let s = tpch_schema();
        for (name, q) in validation_queries(&s).unwrap() {
            if name == "Q6H" {
                assert!(q.is_boolean());
            } else {
                assert!(!q.is_boolean(), "{name} should have answer variables");
            }
        }
    }

    #[test]
    fn join_counts_are_plausible() {
        let s = tpch_schema();
        let qs = validation_queries(&s).unwrap();
        let by_name: std::collections::HashMap<_, _> =
            qs.iter().map(|(n, q)| (n.as_str(), q)).collect();
        assert_eq!(by_name["Q1H"].join_count(), 0);
        assert!(by_name["Q5H"].join_count() >= 5);
        assert!(by_name["Q8H"].join_count() >= 5);
    }

    #[test]
    fn frequent_constant_queries_are_nonempty_at_small_scale() {
        let db = generate(TpchConfig { scale: 0.001, seed: 5 });
        let qs = validation_queries(db.schema()).unwrap();
        for (name, q) in &qs {
            // Brand- and quantity-constant queries can legitimately be
            // empty at tiny scale; the robust ones must match.
            if ["Q1H", "Q4H", "Q10H", "Q12H", "Q14H"].contains(&name.as_str()) {
                let ans = answers(&db, q).unwrap();
                assert!(!ans.is_empty(), "{name} returned no answers");
            }
        }
    }
}
