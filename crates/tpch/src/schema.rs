//! The TPC-H-like schema: eight relations, primary keys first, full FK
//! graph.

use cqa_storage::{ColumnType::*, Schema};

/// Builds the TPC-H-like schema.
///
/// Primary keys (as in TPC-H): `region(r_regionkey)`,
/// `nation(n_nationkey)`, `supplier(s_suppkey)`, `part(p_partkey)`,
/// `partsupp(ps_partkey, ps_suppkey)`, `customer(c_custkey)`,
/// `orders(o_orderkey)`, `lineitem(l_orderkey, l_linenumber)`.
pub fn tpch_schema() -> Schema {
    Schema::builder()
        .relation("region", &[("r_regionkey", Int), ("r_name", Str)], Some(1))
        .relation("nation", &[("n_nationkey", Int), ("n_name", Str), ("n_regionkey", Int)], Some(1))
        .relation(
            "supplier",
            &[("s_suppkey", Int), ("s_name", Str), ("s_nationkey", Int), ("s_acctbal", Int)],
            Some(1),
        )
        .relation(
            "part",
            &[
                ("p_partkey", Int),
                ("p_name", Str),
                ("p_brand", Str),
                ("p_type", Str),
                ("p_size", Int),
                ("p_container", Str),
                ("p_retailprice", Int),
            ],
            Some(1),
        )
        .relation(
            "partsupp",
            &[
                ("ps_partkey", Int),
                ("ps_suppkey", Int),
                ("ps_availqty", Int),
                ("ps_supplycost", Int),
            ],
            Some(2),
        )
        .relation(
            "customer",
            &[
                ("c_custkey", Int),
                ("c_name", Str),
                ("c_nationkey", Int),
                ("c_mktsegment", Str),
                ("c_acctbal", Int),
            ],
            Some(1),
        )
        .relation(
            "orders",
            &[
                ("o_orderkey", Int),
                ("o_custkey", Int),
                ("o_orderstatus", Str),
                ("o_totalprice", Int),
                ("o_orderdate", Int),
                ("o_orderpriority", Str),
                ("o_clerk", Str),
            ],
            Some(1),
        )
        .relation(
            "lineitem",
            &[
                ("l_orderkey", Int),
                ("l_linenumber", Int),
                ("l_partkey", Int),
                ("l_suppkey", Int),
                ("l_quantity", Int),
                ("l_extendedprice", Int),
                ("l_discount", Int),
                ("l_returnflag", Str),
                ("l_linestatus", Str),
                ("l_shipdate", Int),
                ("l_shipmode", Str),
            ],
            Some(2),
        )
        .foreign_key("nation", &["n_regionkey"], "region", &["r_regionkey"])
        .foreign_key("supplier", &["s_nationkey"], "nation", &["n_nationkey"])
        .foreign_key("customer", &["c_nationkey"], "nation", &["n_nationkey"])
        .foreign_key("partsupp", &["ps_partkey"], "part", &["p_partkey"])
        .foreign_key("partsupp", &["ps_suppkey"], "supplier", &["s_suppkey"])
        .foreign_key("orders", &["o_custkey"], "customer", &["c_custkey"])
        .foreign_key("lineitem", &["l_orderkey"], "orders", &["o_orderkey"])
        .foreign_key("lineitem", &["l_partkey"], "part", &["p_partkey"])
        .foreign_key("lineitem", &["l_suppkey"], "supplier", &["s_suppkey"])
        .foreign_key(
            "lineitem",
            &["l_partkey", "l_suppkey"],
            "partsupp",
            &["ps_partkey", "ps_suppkey"],
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_eight_relations() {
        let s = tpch_schema();
        assert_eq!(s.len(), 8);
        for name in
            ["region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"]
        {
            assert!(s.rel_id(name).is_some(), "missing relation {name}");
        }
    }

    #[test]
    fn composite_keys_are_declared() {
        let s = tpch_schema();
        let ps = s.relation(s.rel_id("partsupp").unwrap());
        assert_eq!(ps.key_len, Some(2));
        let li = s.relation(s.rel_id("lineitem").unwrap());
        assert_eq!(li.key_len, Some(2));
        let ord = s.relation(s.rel_id("orders").unwrap());
        assert_eq!(ord.key_len, Some(1));
    }

    #[test]
    fn foreign_keys_span_the_schema() {
        let s = tpch_schema();
        let pairs = s.joinable_pairs();
        // 11 FK column pairs × 2 directions.
        assert_eq!(pairs.len(), 22);
        // lineitem joins with orders, part, supplier, partsupp.
        let li = s.rel_id("lineitem").unwrap();
        let partners: std::collections::HashSet<_> =
            pairs.iter().filter(|((r, _), _)| *r == li).map(|(_, (p, _))| *p).collect();
        assert_eq!(partners.len(), 4);
    }
}
