#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A TPC-H-like schema and data generator.
//!
//! The paper generates its consistent base databases with the TPC-H 2.18.0
//! `dbgen` at scale factor 1 (§6.1). We reproduce the essential structure
//! deterministically at configurable scale:
//!
//! * the eight relations with their standard primary keys (key columns
//!   moved to the front, per the paper's `key(R) = {1..m}` convention) and
//!   the full foreign-key graph — the FK graph is what the static query
//!   generator draws joinable attribute pairs from;
//! * realistic value distributions for the purposes of this benchmark:
//!   categorical columns with the standard small vocabularies (segments,
//!   priorities, ship modes, brands, …), dates as day offsets over seven
//!   years, and money as integer cents;
//! * foreign keys always reference existing rows, so the join patterns the
//!   noise generator preserves are actually present.
//!
//! Verbose comment columns are omitted; they never participate in keys,
//! joins, or query constants, so they only add memory. The cardinality
//! ratios between relations follow TPC-H (`customer : orders : lineitem ≈
//! 1 : 10 : 40`, four `partsupp` per `part`, …).

pub mod gen;
pub mod queries;
pub mod schema;

pub use gen::{generate, TpchConfig};
pub use queries::validation_queries;
pub use schema::tpch_schema;
