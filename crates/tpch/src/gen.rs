//! Deterministic dbgen-style data generation.

use crate::schema::tpch_schema;
use cqa_common::Mt64;
use cqa_storage::{Database, Value};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// The scale factor. TPC-H SF 1 corresponds to roughly 9M tuples; the
    /// benchmark harness defaults to small fractions of that (the schemes'
    /// relative behaviour is driven by noise/balance/joins, not raw scale —
    /// see DESIGN.md's substitution table).
    pub scale: f64,
    /// RNG seed; the same seed and scale always produce the same database.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig { scale: 0.001, seed: 42 }
    }
}

impl TpchConfig {
    /// A scale suitable for unit tests (hundreds of facts).
    pub fn tiny() -> Self {
        TpchConfig { scale: 0.0002, seed: 7 }
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("VIETNAM", 2),
    ("CHINA", 2),
];
const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const CONTAINERS: [&str; 8] =
    ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PKG", "WRAP JAR"];
const TYPE_ADJ: [&str; 5] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY"];
const TYPE_MAT: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const PART_NOUNS: [&str; 8] =
    ["almond", "antique", "azure", "beige", "bisque", "blush", "burnished", "chartreuse"];

/// Seven years of dates, as day offsets from 1992-01-01.
const DATE_RANGE: i64 = 2556;

fn pick<'a>(rng: &mut Mt64, xs: &[&'a str]) -> &'a str {
    xs[rng.index(xs.len())]
}

/// Generates a consistent TPC-H-like database.
pub fn generate(config: TpchConfig) -> Database {
    let mut db = Database::new(tpch_schema());
    let mut rng = Mt64::new(config.seed);
    let sf = config.scale.max(0.0);
    let scaled = |base: f64| -> i64 { ((base * sf).round() as i64).max(1) };

    let n_supplier = scaled(10_000.0);
    let n_part = scaled(200_000.0);
    let n_customer = scaled(150_000.0);
    let n_orders = scaled(1_500_000.0);

    // region
    for (i, name) in REGIONS.iter().enumerate() {
        db.insert_named("region", &[Value::Int(i as i64), Value::str(*name)]).unwrap();
    }
    // nation
    for (i, (name, region)) in NATIONS.iter().enumerate() {
        db.insert_named("nation", &[Value::Int(i as i64), Value::str(*name), Value::Int(*region)])
            .unwrap();
    }
    // supplier
    for k in 1..=n_supplier {
        db.insert_named(
            "supplier",
            &[
                Value::Int(k),
                Value::str(format!("Supplier#{k:09}")),
                Value::Int(rng.below(25) as i64),
                Value::Int(rng.below(1_000_000) as i64 - 100_000),
            ],
        )
        .unwrap();
    }
    // part
    for k in 1..=n_part {
        let name = format!("{} {}", pick(&mut rng, &PART_NOUNS), pick(&mut rng, &PART_NOUNS));
        let brand = format!("Brand#{}{}", 1 + rng.below(5), 1 + rng.below(5));
        let ptype = format!("{} {}", pick(&mut rng, &TYPE_ADJ), pick(&mut rng, &TYPE_MAT));
        db.insert_named(
            "part",
            &[
                Value::Int(k),
                Value::str(name),
                Value::str(brand),
                Value::str(ptype),
                Value::Int(1 + rng.below(50) as i64),
                Value::str(pick(&mut rng, &CONTAINERS)),
                Value::Int(90_000 + rng.below(20_000) as i64),
            ],
        )
        .unwrap();
    }
    // partsupp: 4 suppliers per part (fewer when there are few suppliers).
    let per_part = 4.min(n_supplier as usize);
    for pk in 1..=n_part {
        let suppliers = rng.sample_indices(n_supplier as usize, per_part);
        for s in suppliers {
            db.insert_named(
                "partsupp",
                &[
                    Value::Int(pk),
                    Value::Int(s as i64 + 1),
                    Value::Int(1 + rng.below(9999) as i64),
                    Value::Int(100 + rng.below(100_000) as i64),
                ],
            )
            .unwrap();
        }
    }
    // customer
    for k in 1..=n_customer {
        db.insert_named(
            "customer",
            &[
                Value::Int(k),
                Value::str(format!("Customer#{k:09}")),
                Value::Int(rng.below(25) as i64),
                Value::str(pick(&mut rng, &SEGMENTS)),
                Value::Int(rng.below(1_100_000) as i64 - 100_000),
            ],
        )
        .unwrap();
    }
    // Pre-compute each part's registered suppliers once; inserting facts
    // invalidates the database's index caches, so querying an index inside
    // the generation loop would rebuild it per row.
    let mut part_suppliers: Vec<Vec<i64>> = vec![Vec::new(); n_part as usize + 1];
    {
        let ps = db.schema().rel_id("partsupp").unwrap();
        for (_, row) in db.table(ps).iter() {
            let pk = row[0].as_int().expect("ps_partkey") as usize;
            let sk = row[1].as_int().expect("ps_suppkey");
            part_suppliers[pk].push(sk);
        }
    }

    // orders + lineitem
    let next_clerk = move |rng: &mut Mt64| format!("Clerk#{:09}", 1 + rng.below(1000));
    for ok in 1..=n_orders {
        let custkey = 1 + rng.below(n_customer as u64) as i64;
        let orderdate = rng.below(DATE_RANGE as u64 - 150) as i64;
        let status = ["F", "O", "P"][rng.index(3)];
        let n_lines = 1 + rng.below(7) as i64;
        let mut total = 0i64;
        for ln in 1..=n_lines {
            let partkey = 1 + rng.below(n_part as u64) as i64;
            // Pick one of the part's registered suppliers so the composite
            // lineitem→partsupp FK holds.
            let suppliers = &part_suppliers[partkey as usize];
            let suppkey = if suppliers.is_empty() {
                1 + rng.below(n_supplier as u64) as i64
            } else {
                suppliers[rng.index(suppliers.len())]
            };
            let quantity = 1 + rng.below(50) as i64;
            let price = quantity * (90_000 + rng.below(20_000) as i64) / 100;
            total += price;
            let shipdate = orderdate + 1 + rng.below(120) as i64;
            db.insert_named(
                "lineitem",
                &[
                    Value::Int(ok),
                    Value::Int(ln),
                    Value::Int(partkey),
                    Value::Int(suppkey),
                    Value::Int(quantity),
                    Value::Int(price),
                    Value::Int(rng.below(11) as i64), // discount 0..10%
                    Value::str(["A", "N", "R"][rng.index(3)]),
                    Value::str(["O", "F"][rng.index(2)]),
                    Value::Int(shipdate),
                    Value::str(pick(&mut rng, &SHIPMODES)),
                ],
            )
            .unwrap();
        }
        db.insert_named(
            "orders",
            &[
                Value::Int(ok),
                Value::Int(custkey),
                Value::str(status),
                Value::Int(total),
                Value::Int(orderdate),
                Value::str(pick(&mut rng, &PRIORITIES)),
                Value::str(next_clerk(&mut rng)),
            ],
        )
        .unwrap();
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_storage::is_consistent;

    #[test]
    fn generated_database_is_consistent() {
        let db = generate(TpchConfig::tiny());
        assert!(is_consistent(&db));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(TpchConfig { scale: 0.0003, seed: 9 });
        let b = generate(TpchConfig { scale: 0.0003, seed: 9 });
        assert_eq!(a.fact_count(), b.fact_count());
        // Spot-check a relation's contents.
        let rel = a.schema().rel_id("customer").unwrap();
        for (i, row) in a.table(rel).iter() {
            assert_eq!(row, b.table(rel).row(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(TpchConfig { scale: 0.0003, seed: 1 });
        let b = generate(TpchConfig { scale: 0.0003, seed: 2 });
        let rel = a.schema().rel_id("lineitem").unwrap();
        assert_ne!(a.table(rel).row(0), b.table(rel).row(0));
    }

    #[test]
    fn cardinality_ratios_follow_tpch() {
        let db = generate(TpchConfig { scale: 0.002, seed: 3 });
        let count = |name: &str| db.table(db.schema().rel_id(name).unwrap()).len() as f64;
        assert_eq!(count("region"), 5.0);
        assert_eq!(count("nation"), 25.0);
        // orders ≈ 10 × customers; lineitem ≈ 4 × orders (1..7 per order).
        let ratio_oc = count("orders") / count("customer");
        assert!((9.0..11.0).contains(&ratio_oc), "orders/customer = {ratio_oc}");
        let ratio_lo = count("lineitem") / count("orders");
        assert!((3.0..5.0).contains(&ratio_lo), "lineitem/orders = {ratio_lo}");
        assert!((count("partsupp") / count("part") - 4.0).abs() < 0.01);
    }

    #[test]
    fn foreign_keys_reference_existing_rows() {
        let db = generate(TpchConfig::tiny());
        let s = db.schema();
        for (rid, rel) in s.iter() {
            for fk in &rel.foreign_keys {
                let target_ix = db.index(
                    fk.target,
                    &fk.target_columns.iter().map(|&c| c as u16).collect::<Vec<_>>(),
                );
                for (_, row) in db.table(rid).iter() {
                    let key: Vec<_> = fk.columns.iter().map(|&c| row[c]).collect();
                    assert!(
                        !target_ix.get(&key).is_empty(),
                        "dangling FK from {} to {}",
                        rel.name,
                        s.relation(fk.target).name
                    );
                }
            }
        }
    }

    #[test]
    fn lineitem_blocks_are_singletons_initially() {
        let db = generate(TpchConfig::tiny());
        let li = db.schema().rel_id("lineitem").unwrap();
        assert_eq!(db.blocks(li).non_singleton_count(), 0);
    }
}
